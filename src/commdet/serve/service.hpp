// CommunityService: the streaming daemon's core — one writer thread
// applying micro-batched edge deltas through DynamicCommunities, many
// reader threads answering queries from epoch-published snapshots.
//
// Threading model (single-writer, wait-free readers):
//   * submit() enqueues deltas from any thread, blocking only on
//     backpressure (bounded queue).
//   * The writer thread drains the queue into micro-batches cut by
//     count (`batch_max_deltas`), wall-clock deadline
//     (`batch_max_delay_seconds`), or a control item (COMMIT barrier,
//     SAVE, STATS, shutdown), and applies each batch transactionally.
//   * Readers call snapshot() — an atomic shared_ptr load — and never
//     touch the mutating state; a query observes exactly one fully
//     committed epoch.
//
// Durability (see serve/wal.hpp for the on-disk grammar):
//   intent append+fsync -> apply_batch -> commit append+fsync ->
//   publish -> (periodic) snapshot save + WAL segment rotation.
// An acknowledged batch (COMMIT returned OK) survives SIGKILL: restart
// loads the newest valid snapshot generation and replays the committed
// WAL suffix bit-for-bit.  Unacknowledged tail batches may be lost —
// that is the contract.  SIGTERM/SIGINT route through the PR-3
// cooperative-interrupt flag, which the writer polls even when idle:
// graceful drain, final save, clean exit.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "commdet/dyn/dynamic_communities.hpp"
#include "commdet/graph/delta.hpp"
#include "commdet/obs/eventlog.hpp"
#include "commdet/obs/json.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/report.hpp"
#include "commdet/obs/telemetry.hpp"
#include "commdet/robust/checkpoint.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/robust/expected.hpp"
#include "commdet/robust/fault_injection.hpp"
#include "commdet/serve/epoch.hpp"
#include "commdet/serve/replication.hpp"
#include "commdet/serve/wal.hpp"
#include "commdet/util/timer.hpp"
#include "commdet/util/types.hpp"

namespace commdet::serve {

struct ServeOptions {
  /// Detection / halo / refresh configuration for the maintained
  /// clustering (dyn/dynamic_communities.hpp).
  DynamicOptions dynamic;

  /// State root: snapshot generations land in `dir/`, WAL segments in
  /// `dir/wal/`.
  std::string dir;

  /// Micro-batch cut: flush once this many deltas are gathered ...
  std::int64_t batch_max_deltas = 1024;
  /// ... or once the oldest gathered delta has waited this long.
  double batch_max_delay_seconds = 0.05;

  /// Snapshot cadence: save + rotate the WAL segment every N committed
  /// batches (0 = only on explicit SAVE and graceful shutdown).
  int save_every_batches = 16;

  /// Snapshot generations (and WAL segments + 1) retained.
  int keep_generations = 2;

  /// fsync every WAL append.  Turning this off trades the durability
  /// contract for ingest throughput (benchmarks, tests on tmpfs).
  bool fsync_wal = true;

  /// Backpressure bound: submit() blocks while this many deltas are
  /// already queued.
  std::int64_t max_queue_deltas = std::int64_t{1} << 20;

  /// WAL-shipping replication (serve/replication.hpp).  Empty endpoint
  /// list = no replication.  Shipping is strictly post-commit and
  /// non-blocking: a slow or dead follower never stalls ingestion.
  ReplicationOptions replication;
};

/// What SAVE acknowledges: the generation written and the epoch it
/// captured.
struct SaveResult {
  std::int64_t generation = 0;
  std::int64_t epoch = 0;
};

template <VertexId V>
class CommunityService {
  struct Barrier {
    std::promise<Expected<std::int64_t>> done;
  };
  struct SaveReq {
    std::promise<Expected<SaveResult>> done;
  };
  struct StatsReq {
    std::promise<std::string> done;
  };
  using Control = std::variant<std::shared_ptr<Barrier>, std::shared_ptr<SaveReq>,
                               std::shared_ptr<StatsReq>>;
  using Item = std::variant<EdgeDelta<V>, Control>;
  using LabelChange = typename DynamicCommunities<V>::LabelChange;

 public:
  /// Cold start: take ownership of the graph, run the initial
  /// detection, persist generation 1, open the first WAL segment, and
  /// start serving at epoch 0.
  [[nodiscard]] static Expected<std::unique_ptr<CommunityService>> create(
      CommunityGraph<V> base, ServeOptions opts) {
    try {
      std::unique_ptr<CommunityService> svc(new CommunityService(std::move(opts)));
      svc->dyn_ = std::make_unique<DynamicCommunities<V>>(std::move(base),
                                                          svc->opts_.dynamic);
      svc->bootstrap();
      return svc;
    } catch (const std::exception& e) {
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }
  }

  /// Crash/graceful-restart recovery: load the newest valid snapshot
  /// generation, replay the committed WAL suffix (bit-for-bit
  /// membership, checked against the recorded checksums), fold the
  /// recovered state into a fresh durable generation, and resume.
  [[nodiscard]] static Expected<std::unique_ptr<CommunityService>> open(ServeOptions opts) {
    try {
      std::unique_ptr<CommunityService> svc(new CommunityService(std::move(opts)));
      auto loaded = DynamicCommunities<V>::load_state(svc->opts_.dir, svc->opts_.dynamic);
      if (!loaded.has_value()) return Unexpected(loaded.error());
      svc->dyn_ = std::make_unique<DynamicCommunities<V>>(std::move(loaded.value()));
      auto records = read_wal_records<V>(svc->wal_dir(), svc->dyn_->epoch());
      for (const WalRecord<V>& rec : records) {
        auto rep = svc->dyn_->replay_batch(rec.batch, std::span<const LabelChange>(rec.changes),
                                           rec.num_communities, rec.modularity,
                                           rec.coverage, rec.labels_crc);
        if (!rep.has_value()) return Unexpected(rep.error());
      }
      svc->replayed_ = static_cast<std::int64_t>(records.size());
      svc->bootstrap();
      return svc;
    } catch (const std::exception& e) {
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }
  }

  CommunityService(const CommunityService&) = delete;
  CommunityService& operator=(const CommunityService&) = delete;

  ~CommunityService() { shutdown(); }

  // ----- reader side (any thread, never blocks on the writer) -----

  /// The last committed epoch's frozen membership view.
  [[nodiscard]] std::shared_ptr<const MembershipSnapshot<V>> snapshot() const noexcept {
    return publisher_.current();
  }

  /// Query-throughput gauge hook (sessions call this per answered query).
  void note_query() noexcept {
    queries_.fetch_add(1, std::memory_order_relaxed);
    if (queries_counter_ != nullptr) queries_counter_->add(1);
  }

  [[nodiscard]] std::int64_t queries_served() const noexcept {
    return queries_.load(std::memory_order_relaxed);
  }

  /// Batches restored from the WAL by open() (0 for create()).
  [[nodiscard]] std::int64_t replayed_batches() const noexcept { return replayed_; }

  // ----- ingestion side -----

  /// Enqueues one delta; blocks on backpressure.  The delta is neither
  /// durable nor applied until a later COMMIT barrier (or batch cut)
  /// acknowledges it.
  Expected<std::monostate> submit(const EdgeDelta<V>& d) {
    std::unique_lock<std::mutex> lk(mu_);
    const auto has_space = [this] {
      return queued_deltas_.load(std::memory_order_relaxed) < opts_.max_queue_deltas ||
             stop_ || crash_;
    };
    if (!has_space()) {
      // Clock only the blocked path: the common (uncontended) submit
      // must not pay two steady_clock reads per delta.
      WallTimer blocked;
      cv_space_.wait(lk, has_space);
      if (h_submit_wait_ != nullptr) h_submit_wait_->record_seconds(blocked.seconds());
    }
    if (stop_ || crash_)
      return Unexpected(Error{ErrorCode::kInterrupted, Phase::kDynamic,
                              "service is shutting down"});
    queue_.emplace_back(d);
    queued_deltas_.fetch_add(1, std::memory_order_relaxed);
    cv_work_.notify_one();
    return std::monostate{};
  }

  /// Barrier: cuts the current micro-batch, waits until everything
  /// submitted before it has been applied, and returns the resulting
  /// epoch — or the batch's structured error if a batch since the
  /// previous barrier rolled back (sticky, consumed by this ack).
  [[nodiscard]] Expected<std::int64_t> commit() {
    auto barrier = std::make_shared<Barrier>();
    auto fut = barrier->done.get_future();
    if (auto err = push_control(Control(std::move(barrier)))) return Unexpected(*err);
    return await(fut);
  }

  /// Snapshot now: persists the current epoch as the next generation
  /// and rotates the WAL segment.  Runs on the writer thread, ordered
  /// after everything submitted before it.
  [[nodiscard]] Expected<SaveResult> save() {
    auto req = std::make_shared<SaveReq>();
    auto fut = req->done.get_future();
    if (auto err = push_control(Control(std::move(req)))) return Unexpected(*err);
    return await(fut);
  }

  /// One-line JSON: service gauges plus the v1 run report's "dynamic"
  /// object.  Runs on the writer thread (the stats are writer-owned).
  [[nodiscard]] Expected<std::string> stats_json() {
    auto req = std::make_shared<StatsReq>();
    auto fut = req->done.get_future();
    if (auto err = push_control(Control(std::move(req)))) return Unexpected(*err);
    try {
      return fut.get();
    } catch (const std::exception& e) {
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }
  }

  /// Graceful drain: applies everything already queued, answers pending
  /// barriers, writes a final snapshot generation, stops the writer.
  /// Idempotent; also invoked by the destructor.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!crash_) stop_ = true;
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    if (writer_.joinable()) writer_.join();
    if (repl_) repl_->shutdown();
  }

  /// Crash simulation for recovery tests: the writer thread exits
  /// immediately — no drain, no final save, pending barriers break —
  /// leaving exactly the on-disk state a SIGKILL would.  The WAL and
  /// snapshots already fsync'd remain valid; open() recovers from them.
  void crash_for_test() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      crash_ = true;
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    if (writer_.joinable()) writer_.join();
    if (repl_) repl_->shutdown();
  }

  [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }

  /// Replication shipping state, when enabled (HEALTH, tests, bench).
  [[nodiscard]] const ReplicationManager<V>* replication() const noexcept {
    return repl_.get();
  }

  /// Cluster term this writer ships under (0 = unclustered).
  [[nodiscard]] std::int64_t cluster_term() const noexcept {
    return opts_.replication.term;
  }

  /// Highest term a follower has fenced this writer with via a typed
  /// stale-term refusal (0 while unfenced).  Non-zero means a newer
  /// leader exists and this writer must demote.
  [[nodiscard]] std::int64_t fenced_term() const noexcept {
    return repl_ ? repl_->fenced_term() : 0;
  }

  /// One-line JSON for the HEALTH verb (writer role).  Safe from any
  /// thread: reads the published snapshot and atomics only.
  [[nodiscard]] std::string health_json() const {
    const auto snap = publisher_.current();
    const std::int64_t epoch = snap ? snap->epoch : 0;
    std::string out = "{\"role\":\"writer\",\"epoch\":" + std::to_string(epoch) +
                      ",\"wal_first_seq\":" +
                      std::to_string(wal_first_seq_.load(std::memory_order_relaxed)) +
                      ",\"queries\":" +
                      std::to_string(queries_.load(std::memory_order_relaxed)) +
                      ",\"term\":" + std::to_string(cluster_term()) +
                      ",\"fenced_term\":" + std::to_string(fenced_term());
    if (repl_) {
      const std::int64_t acked = repl_->min_acked();
      out += ",\"replication\":{\"min_acked\":" + std::to_string(acked) +
             ",\"lag\":" + std::to_string(acked < 0 ? epoch : epoch - acked) +
             ",\"followers\":[";
      bool first = true;
      for (const FollowerLinkStatus& s : repl_->status()) {
        if (!first) out += ',';
        first = false;
        out += "{\"endpoint\":\"" + s.endpoint + "\",\"connected\":";
        out += s.connected ? "true" : "false";
        out += ",\"acked_epoch\":" + std::to_string(s.acked_epoch) +
               ",\"shed\":" + std::to_string(s.shed) +
               ",\"reconnects\":" + std::to_string(s.reconnects) +
               ",\"snapshots_sent\":" + std::to_string(s.snapshots_sent) + "}";
      }
      out += "]}";
    } else {
      out += ",\"replication\":null";
    }
    out += "}";
    return out;
  }

  /// The maintained dynamic state.  Writer-owned while the service is
  /// running: only call this after shutdown() (e.g. to fold the final
  /// clustering and DynamicRunStats into a run report).
  [[nodiscard]] const DynamicCommunities<V>& dynamics() const noexcept { return *dyn_; }

  /// Merged telemetry: every registry counter/gauge/histogram plus the
  /// live values the high-water registry cannot express — queue depth,
  /// epoch, ingest rate, per-link replication lag in records *and*
  /// seconds.  Safe from any thread (atomics + link status snapshots).
  [[nodiscard]] obs::TelemetrySnapshot collect_telemetry() const {
    obs::TelemetrySnapshot snap = obs::TelemetryHub().collect();
    const auto pub = publisher_.current();
    const std::int64_t epoch = pub ? pub->epoch : 0;
    snap.set_gauge("serve.epoch", epoch);
    snap.set_gauge("serve.queue.depth", queued_deltas_.load(std::memory_order_relaxed));
    snap.set_gauge("serve.wal.first_seq", wal_first_seq_.load(std::memory_order_relaxed));
    const double uptime = snap.unix_time - start_unix_;
    snap.set_gauge("serve.uptime_seconds", uptime);
    const std::int64_t applied = deltas_applied_.load(std::memory_order_relaxed);
    snap.set_gauge("serve.ingest.deltas_per_second",
                   uptime > 0.0 ? static_cast<double>(applied) / uptime : 0.0);
    snap.set_gauge("cluster.term", cluster_term());
    if (repl_) {
      const std::int64_t acked = repl_->min_acked();
      snap.set_gauge("serve.repl.min_acked_epoch", acked);
      snap.set_gauge("serve.repl.lag_records", acked < 0 ? epoch : epoch - acked);
      for (const FollowerLinkStatus& s : repl_->status()) {
        const std::string labels = "{endpoint=\"" + s.endpoint + "\"}";
        snap.set_gauge("serve.repl.link.lag_records" + labels,
                       s.acked_epoch < 0 ? epoch : epoch - s.acked_epoch);
        snap.set_gauge("serve.repl.link.lag_seconds" + labels,
                       s.acked_epoch >= epoch ? 0.0 : s.ack_age_seconds);
        snap.set_gauge("serve.repl.link.connected" + labels,
                       static_cast<std::int64_t>(s.connected ? 1 : 0));
        snap.set_gauge("serve.repl.link.shed" + labels, s.shed);
        snap.set_gauge("serve.repl.link.reconnects" + labels, s.reconnects);
        snap.set_gauge("serve.repl.link.snapshots_sent" + labels, s.snapshots_sent);
      }
    }
    return snap;
  }

 private:
  explicit CommunityService(ServeOptions opts) : opts_(std::move(opts)) {
    if (opts_.batch_max_deltas < 1) opts_.batch_max_deltas = 1;
    if (opts_.max_queue_deltas < 1) opts_.max_queue_deltas = 1;
    if (opts_.dir.empty())
      throw_error(ErrorCode::kInvalidArgument, Phase::kDynamic,
                  "ServeOptions.dir must name a state directory");
  }

  [[nodiscard]] std::string wal_dir() const {
    return (std::filesystem::path(opts_.dir) / "wal").string();
  }

  /// Common tail of create()/open(): make the current epoch durable as
  /// a fresh generation (so the possibly-torn previous WAL segment can
  /// be retired), open a new segment, publish, start the writer.
  void bootstrap() {
    start_unix_ = obs::EventLog::now_unix();
    // Resolve metric handles once (nullptr when no registry installed);
    // the hot paths then pay one predictable branch each.
    queries_counter_ = obs::counter("serve.queries");
    batches_counter_ = obs::counter("serve.batches");
    rollbacks_counter_ = obs::counter("serve.batches_rolled_back");
    deltas_counter_ = obs::counter("serve.deltas_applied");
    saves_counter_ = obs::counter("serve.saves");
    refreshes_counter_ = obs::counter("serve.full_refreshes");
    h_batch_total_ = obs::histogram("serve.batch.total_us");
    h_wal_append_ = obs::histogram("serve.batch.wal_append_us");
    h_apply_ = obs::histogram("serve.batch.apply_us");
    h_publish_ = obs::histogram("serve.batch.publish_us");
    h_batch_deltas_ = obs::histogram("serve.batch.deltas");
    h_submit_wait_ = obs::histogram("serve.submit.wait_us");
    last_save_generation_ = dyn_->save_state(opts_.dir, opts_.keep_generations);
    open_wal_segment(dyn_->epoch() + 1);
    publish();
    if (opts_.replication.enabled())
      repl_ = std::make_unique<ReplicationManager<V>>(
          opts_.replication, opts_.dir, wal_dir(),
          dynamic_config_fingerprint(opts_.dynamic), dyn_->epoch());
    writer_ = std::thread([this] { writer_loop(); });
  }

  void open_wal_segment(std::int64_t first_seq) {
    const bool rotation = wal_ != nullptr;
    wal_.reset();
    wal_ = std::make_unique<WalWriter<V>>(wal_dir(), first_seq, opts_.fsync_wal);
    wal_first_seq_ = first_seq;
    prune_wal_segments();
    if (rotation)
      obs::log_event("wal_rotate", dyn_->epoch(),
                     {obs::EventField::of("first_seq", first_seq)});
  }

  /// Segment retention mirrors snapshot retention: one segment per
  /// retained generation plus the live one, so even a fallback to the
  /// oldest retained generation still finds a contiguous committed
  /// suffix to replay.
  void prune_wal_segments() noexcept {
    auto segs = list_wal_segments(wal_dir());
    const std::size_t keep =
        static_cast<std::size_t>(opts_.keep_generations < 1 ? 1 : opts_.keep_generations) + 1;
    if (segs.size() <= keep) return;
    std::error_code ec;
    for (std::size_t i = 0; i + keep < segs.size(); ++i)
      std::filesystem::remove(segs[i].second, ec);
  }

  void publish() {
    auto snap = std::make_shared<MembershipSnapshot<V>>();
    const Clustering<V>& cl = dyn_->clustering();
    snap->epoch = dyn_->epoch();
    snap->num_communities = cl.num_communities;
    snap->modularity = cl.final_modularity;
    snap->coverage = cl.final_coverage;
    snap->labels = std::make_shared<const std::vector<V>>(cl.community);
    snap->communities =
        std::make_shared<const std::vector<CommunityStats>>(dyn_->community_stats_all());
    publisher_.publish(std::move(snap));
  }

  [[nodiscard]] std::optional<Error> push_control(Control c) {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_ || crash_)
      return Error{ErrorCode::kInterrupted, Phase::kDynamic, "service is shutting down"};
    queue_.emplace_back(std::move(c));
    cv_work_.notify_one();
    return std::nullopt;
  }

  template <typename T>
  [[nodiscard]] Expected<T> await(std::future<Expected<T>>& fut) {
    try {
      return fut.get();
    } catch (const std::exception& e) {
      // Broken promise: the writer died (crash_for_test or fatal error)
      // before answering — exactly what a killed daemon looks like.
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }
  }

  // ----- writer thread -----

  void writer_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      while (queue_.empty() && !stop_ && !crash_) {
        if (interrupt_requested()) {
          stop_ = true;
          cv_space_.notify_all();
          break;
        }
        cv_work_.wait_for(lk, std::chrono::milliseconds(50));
      }
      if (crash_) return;
      if (queue_.empty() && stop_) break;

      // Gather one micro-batch.  The deadline starts when the first
      // delta is seen; a control item cuts the batch immediately.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(opts_.batch_max_delay_seconds));
      DeltaBatch<V> batch;
      std::optional<Control> control;
      bool flush = false;
      while (!flush) {
        if (crash_) return;
        if (!queue_.empty()) {
          Item it = std::move(queue_.front());
          queue_.pop_front();
          if (auto* d = std::get_if<EdgeDelta<V>>(&it)) {
            batch.deltas.push_back(*d);
            queued_deltas_.fetch_sub(1, std::memory_order_relaxed);
            cv_space_.notify_all();
            if (static_cast<std::int64_t>(batch.size()) >= opts_.batch_max_deltas)
              flush = true;
          } else {
            control = std::move(std::get<Control>(it));
            flush = true;
          }
        } else if (stop_ || batch.deltas.empty()) {
          // Drained: stop means apply what we have; an empty batch with
          // an empty queue means a spurious wake — re-enter the wait.
          flush = true;
        } else if (cv_work_.wait_until(lk, deadline) == std::cv_status::timeout) {
          flush = true;
        }
      }
      if (batch.deltas.empty() && !control) continue;

      // Apply outside the lock: submit()/snapshot() must not stall on
      // re-agglomeration.
      lk.unlock();
      if (!batch.deltas.empty()) {
        auto res = apply_one_batch(batch);
        if (!res.has_value()) pending_error_ = res.error();
      }
      if (control) handle_control(*std::move(control));
      lk.lock();
    }

    // Graceful tail: nothing queued, writer still owns the state.
    lk.unlock();
    try {
      do_save();
    } catch (const std::exception&) {
      // A failed final save leaves the WAL authoritative — recovery
      // still replays every committed batch.
    }
  }

  /// WAL intent -> apply -> WAL commit -> publish -> periodic save.
  /// Phase latencies (wal_append = intent + commit appends, apply,
  /// publish) land in the serve.batch.* histograms; the outcome is
  /// logged as a batch_commit / batch_rollback event.
  [[nodiscard]] Expected<std::int64_t> apply_one_batch(const DeltaBatch<V>& batch) {
    const WallTimer batch_timer;
    double wal_seconds = 0.0;
    const std::int64_t seq = dyn_->epoch() + 1;
    // Serialize once: the same bytes go to the local WAL and (suffixed
    // with the commit record) to every replication link.
    const std::string intent =
        format_intent_record<V>(seq, std::span<const EdgeDelta<V>>(batch.deltas));
    try {
      const ScopedTimer t(wal_seconds);
      wal_->append_record(intent);
    } catch (const std::exception& e) {
      return Unexpected(note_rollback(seq, batch, error_from_exception(e, Phase::kDynamic)));
    }

    auto prev = publisher_.current();
    const std::int64_t refreshes_before = dyn_->stats().full_refreshes;
    WallTimer apply_timer;
    auto applied = dyn_->apply_batch(batch);
    const double apply_seconds = apply_timer.seconds();
    if (!applied.has_value()) {
      try {
        wal_->append_abort(seq);
      } catch (const std::exception&) {
        // The missing abort marker is indistinguishable from a crash
        // before commit; replay discards the intent either way.
      }
      return Unexpected(note_rollback(seq, batch, applied.error()));
    }
    if (dyn_->stats().full_refreshes > refreshes_before) {
      if (refreshes_counter_ != nullptr) refreshes_counter_->add(1);
      obs::log_event("full_refresh", seq,
                     {obs::EventField::of("modularity", dyn_->clustering().final_modularity)});
    }

    const std::vector<V>& labels = dyn_->clustering().community;
    const std::vector<V>& old_labels = *prev->labels;
    std::vector<LabelChange> changes;
    for (std::size_t v = 0; v < labels.size(); ++v)
      if (old_labels[v] != labels[v])
        changes.push_back(LabelChange{static_cast<std::int64_t>(v),
                                      static_cast<std::int64_t>(labels[v])});
    const std::uint32_t crc =
        DynamicCommunities<V>::labels_checksum(std::span<const V>(labels));
    const std::string commit_rec = format_commit_record<V>(
        seq, std::span<const LabelChange>(changes), dyn_->num_communities(),
        dyn_->clustering().final_modularity, dyn_->clustering().final_coverage, crc);
    try {
      const ScopedTimer t(wal_seconds);
      wal_->append_record(commit_rec);
    } catch (const std::exception& e) {
      // The epoch advanced in memory but its commit record is not
      // durable; worse, later commit records would be unreachable past
      // this gap.  Fall back to snapshot durability immediately.
      publish();
      try {
        do_save();
      } catch (const std::exception&) {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;  // no durability path left: stop accepting work
        cv_work_.notify_all();
        cv_space_.notify_all();
      }
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }

    // The record is durable but not yet visible: a crash here loses
    // nothing committed (recovery replays the WAL; followers receive
    // the record from the restarted writer's catch-up path).  An
    // injected fault surfaces as the batch's structured error — the
    // fault tests then crash + reopen to prove the epoch survived.
    try {
      COMMDET_FAULT_POINT(fault::kServePublish, Phase::kDynamic);
    } catch (const std::exception& e) {
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }

    WallTimer publish_timer;
    publish();
    const double publish_seconds = publish_timer.seconds();
    if (repl_)
      repl_->on_commit(seq, std::make_shared<const std::string>(intent + commit_rec));
    if (batches_counter_ != nullptr) batches_counter_->add(1);
    if (deltas_counter_ != nullptr)
      deltas_counter_->add(static_cast<std::int64_t>(batch.size()));
    deltas_applied_.fetch_add(static_cast<std::int64_t>(batch.size()),
                              std::memory_order_relaxed);
    const double total_seconds = batch_timer.seconds();
    if (h_wal_append_ != nullptr) h_wal_append_->record_seconds(wal_seconds);
    if (h_apply_ != nullptr) h_apply_->record_seconds(apply_seconds);
    if (h_publish_ != nullptr) h_publish_->record_seconds(publish_seconds);
    if (h_batch_total_ != nullptr) h_batch_total_->record_seconds(total_seconds);
    if (h_batch_deltas_ != nullptr)
      h_batch_deltas_->record(static_cast<std::int64_t>(batch.size()));
    obs::log_event("batch_commit", dyn_->epoch(),
                   {obs::EventField::of("deltas", static_cast<std::int64_t>(batch.size())),
                    obs::EventField::of("changes", static_cast<std::int64_t>(changes.size())),
                    obs::EventField::of("total_us", total_seconds * 1e6)});
    ++batches_since_save_;
    if (opts_.save_every_batches > 0 && batches_since_save_ >= opts_.save_every_batches) {
      try {
        do_save();
      } catch (const std::exception& e) {
        return Unexpected(error_from_exception(e, Phase::kDynamic));
      }
    }
    return dyn_->epoch();
  }

  void handle_control(Control control) {
    if (auto* barrier = std::get_if<std::shared_ptr<Barrier>>(&control)) {
      if (pending_error_.has_value()) {
        (*barrier)->done.set_value(Unexpected(*pending_error_));
        pending_error_.reset();
      } else {
        (*barrier)->done.set_value(dyn_->epoch());
      }
    } else if (auto* save = std::get_if<std::shared_ptr<SaveReq>>(&control)) {
      try {
        (*save)->done.set_value(do_save());
      } catch (const std::exception& e) {
        (*save)->done.set_value(Unexpected(error_from_exception(e, Phase::kDynamic)));
      }
    } else if (auto* stats = std::get_if<std::shared_ptr<StatsReq>>(&control)) {
      (*stats)->done.set_value(build_stats_json());
    }
  }

  /// Logs the failed batch and counts it; returns the error unchanged
  /// so call sites can stay one-line.
  [[nodiscard]] Error note_rollback(std::int64_t seq, const DeltaBatch<V>& batch,
                                    Error err) {
    if (rollbacks_counter_ != nullptr) rollbacks_counter_->add(1);
    obs::log_event("batch_rollback", seq,
                   {obs::EventField::of("deltas", static_cast<std::int64_t>(batch.size())),
                    obs::EventField::of("error", std::string_view(err.detail))});
    return err;
  }

  SaveResult do_save() {
    SaveResult out;
    out.generation = dyn_->save_state(opts_.dir, opts_.keep_generations);
    out.epoch = dyn_->epoch();
    last_save_generation_ = out.generation;
    batches_since_save_ = 0;
    ++saves_;
    if (saves_counter_ != nullptr) saves_counter_->add(1);
    obs::log_event("checkpoint_publish", out.epoch,
                   {obs::EventField::of("generation", out.generation)});
    if (out.epoch + 1 != wal_first_seq_) open_wal_segment(out.epoch + 1);
    return out;
  }

  [[nodiscard]] std::string build_stats_json() {
    obs::JsonWriter w;
    w.begin_object();
    w.key("schema");
    w.value("commdet-serve-stats");
    w.key("version");
    w.value(std::int64_t{1});
    w.key("epoch");
    w.value(dyn_->epoch());
    w.key("replayed");
    w.value(replayed_);
    w.key("queries");
    w.value(queries_.load(std::memory_order_relaxed));
    w.key("saves");
    w.value(saves_);
    w.key("last_save_generation");
    w.value(last_save_generation_);
    w.key("dynamic");
    obs::detail::write_dynamic(w, &dyn_->stats());
    w.end_object();
    return w.take();
  }

  ServeOptions opts_;
  std::unique_ptr<DynamicCommunities<V>> dyn_;  // writer thread only (after start)
  std::unique_ptr<WalWriter<V>> wal_;           // writer thread only (after start)
  std::atomic<std::int64_t> wal_first_seq_{1};  // atomic: HEALTH reads it
  EpochPublisher<V> publisher_;
  std::unique_ptr<ReplicationManager<V>> repl_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_space_;
  std::deque<Item> queue_;
  std::atomic<std::int64_t> queued_deltas_{0};  // atomic: METRICS reads it unlocked
  bool stop_ = false;
  bool crash_ = false;

  // Writer-thread state.
  std::optional<Error> pending_error_;
  std::int64_t batches_since_save_ = 0;
  std::int64_t saves_ = 0;
  std::int64_t last_save_generation_ = 0;
  std::int64_t replayed_ = 0;

  std::atomic<std::int64_t> queries_{0};
  std::atomic<std::int64_t> deltas_applied_{0};
  double start_unix_ = 0.0;

  // Metric handles resolved once in bootstrap(); nullptr = disabled.
  obs::Counter* queries_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::Counter* rollbacks_counter_ = nullptr;
  obs::Counter* deltas_counter_ = nullptr;
  obs::Counter* saves_counter_ = nullptr;
  obs::Counter* refreshes_counter_ = nullptr;
  obs::Histogram* h_batch_total_ = nullptr;
  obs::Histogram* h_wal_append_ = nullptr;
  obs::Histogram* h_apply_ = nullptr;
  obs::Histogram* h_publish_ = nullptr;
  obs::Histogram* h_batch_deltas_ = nullptr;
  obs::Histogram* h_submit_wait_ = nullptr;

  std::thread writer_;
};

}  // namespace commdet::serve
