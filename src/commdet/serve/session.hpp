// One protocol session: a line-in / line-out state machine over a
// CommunityService (writer role) or a FollowerService (follower role).
// Transport-free on purpose — the daemon wraps one Session per
// connection (or one for stdio), and tests drive it directly with
// strings.
//
// Role differences (same verbs, different answers):
//   * writer: full protocol — ingest, COMMIT, SAVE, queries, STATS.
//   * follower: read-only — deltas, COMMIT, and SAVE are refused with
//     a typed kReadOnly error; queries answer from the replicated
//     epoch and are refused with kStaleRead beyond the staleness
//     budget; PROMOTE requests failover (the daemon performs it).
//   * HEALTH works in both roles: one JSON line with role, epoch,
//     replication lag, and WAL cursor.
//   * METRICS works in both roles: live telemetry as Prometheus text
//     exposition (the protocol's one multi-line reply, framed as
//     "OK METRICS <nlines>" + payload) or, with "METRICS json", as a
//     one-line "commdet-telemetry" v1 object.
//
// Every verb is timed into a serve.query.<verb>_us histogram, and a
// verb slower than the configured threshold logs a slow_query event.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "commdet/graph/delta.hpp"
#include "commdet/io/delta_text.hpp"
#include "commdet/obs/eventlog.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/telemetry.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/serve/cluster.hpp"
#include "commdet/serve/follower.hpp"
#include "commdet/serve/protocol.hpp"
#include "commdet/serve/service.hpp"
#include "commdet/util/timer.hpp"
#include "commdet/util/types.hpp"

namespace commdet::serve {

/// Incremental newline framing with a hard per-line bound.  The daemon
/// feeds raw reads; a client that streams an unbounded "line" (hostile
/// or broken) trips the bound instead of growing the buffer without
/// limit, and the session can reply with a typed error and close.
class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line_bytes = std::size_t{1} << 20)
      : max_line_bytes_(max_line_bytes < 16 ? 16 : max_line_bytes) {}

  /// Appends raw bytes; false once the current (unterminated) line has
  /// exceeded the bound.  After overflow the framer discards input
  /// until reset().
  [[nodiscard]] bool feed(const char* data, std::size_t n) {
    if (overflow_) return false;
    buf_.append(data, n);
    if (scan_floor_ < buf_.size() && buf_.find('\n', scan_floor_) == std::string::npos) {
      scan_floor_ = buf_.size();
      if (buf_.size() > max_line_bytes_) {
        overflow_ = true;
        buf_.clear();
        scan_floor_ = 0;
        return false;
      }
    }
    return !overflow_;
  }

  /// Next complete line (without its terminator; a trailing '\r' is
  /// stripped), or nullopt when none is buffered.
  [[nodiscard]] std::optional<std::string> next_line() {
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) return std::nullopt;
    std::string line = buf_.substr(0, nl);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    buf_.erase(0, nl + 1);
    scan_floor_ = 0;
    if (line.size() > max_line_bytes_) {  // terminated but oversized
      overflow_ = true;
      return std::nullopt;
    }
    return line;
  }

  [[nodiscard]] bool overflowed() const noexcept { return overflow_; }

  /// Bytes of an unterminated final line still buffered (EOF handling:
  /// stdio keeps it as a last request, sockets discard it).
  [[nodiscard]] bool has_partial() const noexcept { return !buf_.empty(); }
  [[nodiscard]] std::string take_partial() {
    std::string out = std::move(buf_);
    buf_.clear();
    scan_floor_ = 0;
    return out;
  }

  void reset() noexcept {
    buf_.clear();
    scan_floor_ = 0;
    overflow_ = false;
  }

  [[nodiscard]] std::size_t max_line_bytes() const noexcept { return max_line_bytes_; }

 private:
  std::size_t max_line_bytes_;
  std::size_t scan_floor_ = 0;  // no '\n' below this offset (amortizes the scan)
  std::string buf_;
  bool overflow_ = false;
};

template <VertexId V>
class Session {
 public:
  struct Reply {
    std::optional<std::string> line;  // response to send, when any
    bool close = false;               // QUIT / SHUTDOWN: drop the connection
    bool shutdown = false;            // SHUTDOWN: stop the daemon
    bool promote = false;             // PROMOTE: daemon turns follower into writer
  };

  /// Writer-role session.  `peer` labels this session in error
  /// locations ("stdin:17", "conn-3:2"), mirroring the file readers'
  /// "path:line" contract.  `slow_query_seconds` > 0 logs a slow_query
  /// event for any verb whose handling exceeds it.
  Session(CommunityService<V>& service, std::string peer, double slow_query_seconds = 0.0)
      : writer_(&service), peer_(std::move(peer)), slow_query_seconds_(slow_query_seconds) {}

  /// Follower-role session: read-only, bounded-stale.
  Session(FollowerService<V>& follower, std::string peer, double slow_query_seconds = 0.0)
      : follower_(&follower),
        peer_(std::move(peer)),
        slow_query_seconds_(slow_query_seconds) {}

  [[nodiscard]] bool is_follower() const noexcept { return follower_ != nullptr; }

  /// Installed by the daemon: answers the CLUSTER verb with
  /// cluster-wide context (peer list, rank, supervisor state).  The
  /// callback receives the verb argument ("" for the JSON form, "peek"
  /// for the machine one-liner) and returns the complete reply line.
  /// Without one, the session composes node-local info only.
  using ClusterInfoFn = std::function<std::string(const std::string& arg)>;
  void set_cluster_info(ClusterInfoFn fn) { cluster_info_ = std::move(fn); }

  Reply handle_line(const std::string& line) {
    ++line_no_;
    const std::string where = peer_ + ":" + std::to_string(line_no_);
    try {
      if (line.empty() || line[0] == '#' || line[0] == '%') return {};
      if (is_delta_line(line)) return handle_delta(line, where);
      return handle_verb(line, where);
    } catch (const std::exception& e) {
      return {protocol_error_line(error_from_exception(e, Phase::kInput)), false, false};
    }
  }

 private:
  Reply handle_delta(const std::string& line, const std::string& where) {
    if (follower_) return read_only(where);
    scratch_.deltas.clear();
    parse_delta_line(line, where, scratch_);  // throws the located error
    for (const EdgeDelta<V>& d : scratch_.deltas) {
      auto sent = writer_->submit(d);
      if (!sent.has_value()) return {protocol_error_line(sent.error()), true, false};
    }
    return {};  // silent: bulk ingest costs no round trips
  }

  /// Times every verb into its serve.query.<verb>_us histogram and
  /// logs a slow_query event past the configured threshold.  Unknown
  /// verbs are not recorded — a hostile client must not be able to
  /// mint unbounded metric names.
  Reply handle_verb(const std::string& line, const std::string& where) {
    std::istringstream ls(line);
    std::string verb;
    ls >> verb;

    const WallTimer timer;
    Reply reply = dispatch_verb(verb, ls, where);
    const double seconds = timer.seconds();
    if (obs::Histogram* h = verb_histogram(verb); h != nullptr)
      h->record_seconds(seconds);
    if (slow_query_seconds_ > 0.0 && seconds > slow_query_seconds_ && known_verb(verb)) {
      obs::log_event("slow_query", current_epoch(),
                     {obs::EventField::of("verb", std::string_view(verb)),
                      obs::EventField::of("us", seconds * 1e6),
                      obs::EventField::of("peer", std::string_view(peer_))});
    }
    return reply;
  }

  Reply dispatch_verb(const std::string& verb, std::istringstream& ls,
                      const std::string& where) {
    if (verb == "GET") {
      std::int64_t v = -1;
      if (!(ls >> v))
        return err(where + ": GET takes a vertex id");
      auto got = query_snapshot();
      if (!got.has_value()) return {protocol_error_line(got.error()), false, false};
      const auto snap = std::move(got.value());
      if (v < 0 || v >= static_cast<std::int64_t>(snap->labels->size()))
        return {protocol_error_line(
                    Error{ErrorCode::kBadEndpoint, Phase::kInput,
                          where + ": vertex " + std::to_string(v) + " outside [0, " +
                              std::to_string(snap->labels->size()) + ")"}),
                false, false};
      note_query();
      return ok(std::to_string(v) + ' ' +
                std::to_string(static_cast<std::int64_t>(
                    (*snap->labels)[static_cast<std::size_t>(v)])) +
                ' ' + std::to_string(snap->epoch));
    }
    if (verb == "COMMUNITY") {
      std::int64_t c = -1;
      if (!(ls >> c))
        return err(where + ": COMMUNITY takes a community id");
      auto got = query_snapshot();
      if (!got.has_value()) return {protocol_error_line(got.error()), false, false};
      const auto snap = std::move(got.value());
      if (c < 0 || c >= static_cast<std::int64_t>(snap->communities->size()))
        return {protocol_error_line(
                    Error{ErrorCode::kBadEndpoint, Phase::kInput,
                          where + ": community " + std::to_string(c) + " outside [0, " +
                              std::to_string(snap->communities->size()) + ")"}),
                false, false};
      const CommunityStats& s = (*snap->communities)[static_cast<std::size_t>(c)];
      note_query();
      return ok(std::to_string(c) + ' ' + std::to_string(s.size) + ' ' +
                std::to_string(s.internal_weight) + ' ' + std::to_string(s.volume) + ' ' +
                std::to_string(snap->epoch));
    }
    if (verb == "QUALITY") {
      auto got = query_snapshot();
      if (!got.has_value()) return {protocol_error_line(got.error()), false, false};
      const auto snap = std::move(got.value());
      note_query();
      return ok(std::to_string(snap->epoch) + ' ' + std::to_string(snap->num_communities) +
                ' ' + protocol_f64(snap->modularity) + ' ' + protocol_f64(snap->coverage));
    }
    if (verb == "EPOCH") {
      note_query();
      return ok(std::to_string(current_epoch()));
    }
    if (verb == "PING") return ok("pong " + std::to_string(current_epoch()));
    if (verb == "HEALTH")
      return ok(follower_ ? follower_->health_json() : writer_->health_json());
    if (verb == "COMMIT") {
      if (follower_) return read_only(where);
      auto committed = writer_->commit();
      if (!committed.has_value()) return {protocol_error_line(committed.error()), false, false};
      return ok(std::to_string(committed.value()));
    }
    if (verb == "SAVE") {
      if (follower_) return read_only(where);
      auto saved = writer_->save();
      if (!saved.has_value()) return {protocol_error_line(saved.error()), false, false};
      return ok(std::to_string(saved.value().generation) + ' ' +
                std::to_string(saved.value().epoch));
    }
    if (verb == "STATS") {
      if (follower_) return ok(follower_->health_json());
      auto stats = writer_->stats_json();
      if (!stats.has_value()) return {protocol_error_line(stats.error()), false, false};
      return ok(stats.value());
    }
    if (verb == "PROMOTE") {
      if (!follower_)
        return {protocol_error_line(Error{ErrorCode::kInvalidArgument, Phase::kInput,
                                          where + ": already the writer"}),
                false, false};
      // The daemon owns the services; it performs the actual takeover
      // (finalize + reopen as writer) and sends the acknowledgement.
      return Reply{std::nullopt, false, false, true};
    }
    if (verb == "METRICS") {
      // Live telemetry, both roles.  Default is Prometheus text
      // exposition — the protocol's one multi-line reply, framed by a
      // line count so clients can read exactly the payload:
      //   OK METRICS <nlines>\n<line 1>\n...\n<line n>
      // "METRICS json" stays single-line: "OK {commdet-telemetry v1}".
      std::string fmt;
      ls >> fmt;
      const obs::TelemetrySnapshot snap =
          follower_ ? follower_->collect_telemetry() : writer_->collect_telemetry();
      note_query();
      if (fmt == "json") return ok(obs::to_json(snap));
      if (!fmt.empty())
        return err(where + ": METRICS takes no argument or 'json'");
      std::string text = obs::to_prometheus(snap);
      std::int64_t nlines = 0;
      for (const char c : text) nlines += c == '\n' ? 1 : 0;
      if (!text.empty() && text.back() == '\n') text.pop_back();  // daemon adds the last
      return ok("METRICS " + std::to_string(nlines) + '\n' + text);
    }
    if (verb == "CLUSTER") {
      // Failover introspection, both roles.  Plain CLUSTER answers one
      // JSON line next to HEALTH; "CLUSTER peek" answers the fixed
      // key=value one-liner election polls parse (serve/cluster.hpp).
      std::string arg;
      ls >> arg;
      if (!arg.empty() && arg != "peek")
        return err(where + ": CLUSTER takes no argument or 'peek'");
      note_query();
      if (cluster_info_) return {cluster_info_(arg), false, false};
      // No daemon-installed provider: compose node-local state (no
      // peer list, rank unknown).
      const std::int64_t e = current_epoch();
      const std::int64_t term = follower_ ? follower_->term() : writer_->cluster_term();
      if (arg == "peek") {
        ClusterPeek p;
        p.role = follower_ ? "follower" : "writer";
        p.term = term;
        p.epoch = e;
        p.wal_seq = e;
        return {format_cluster_peek(p), false, false};
      }
      std::string json = std::string("{\"role\":\"") +
                         (follower_ ? "follower" : "writer") +
                         "\",\"term\":" + std::to_string(term) +
                         ",\"epoch\":" + std::to_string(e);
      if (follower_)
        json += ",\"lease_remaining\":" +
                protocol_f64(std::max(0.0, follower_->lease_remaining_seconds()));
      else
        json += ",\"fenced_term\":" + std::to_string(writer_->fenced_term());
      json += ",\"rank\":-1,\"peers\":[]}";
      return ok(json);
    }
    if (verb == "QUIT") return {std::string("OK bye"), true, false};
    if (verb == "SHUTDOWN") return {std::string("OK shutting-down"), true, true};
    return err(where + ": unknown verb '" + verb + "'");
  }

  /// The closed verb set per-verb latency histograms exist for.
  [[nodiscard]] static bool known_verb(const std::string& verb) noexcept {
    return verb == "GET" || verb == "COMMUNITY" || verb == "QUALITY" ||
           verb == "EPOCH" || verb == "PING" || verb == "HEALTH" || verb == "COMMIT" ||
           verb == "SAVE" || verb == "STATS" || verb == "METRICS" || verb == "PROMOTE" ||
           verb == "CLUSTER";
  }

  /// Session-cached handle for serve.query.<verb>_us; nullptr for
  /// unknown verbs or when metrics are disabled.
  [[nodiscard]] obs::Histogram* verb_histogram(const std::string& verb) {
    if (!known_verb(verb)) return nullptr;
    auto it = verb_hist_.find(verb);
    if (it == verb_hist_.end())
      it = verb_hist_.emplace(verb, obs::histogram("serve.query." + verb + "_us")).first;
    return it->second;
  }

  [[nodiscard]] Expected<std::shared_ptr<const MembershipSnapshot<V>>> query_snapshot()
      const {
    if (follower_) return follower_->snapshot_for_query();
    return writer_->snapshot();
  }

  [[nodiscard]] std::int64_t current_epoch() const {
    if (follower_) return follower_->epoch();
    return writer_->snapshot()->epoch;
  }

  void note_query() {
    if (follower_)
      follower_->note_query();
    else
      writer_->note_query();
  }

  [[nodiscard]] Reply read_only(const std::string& where) const {
    return {protocol_error_line(Error{
                ErrorCode::kReadOnly, Phase::kInput,
                where + ": this endpoint is a read-only follower (mutations go to the "
                        "writer; PROMOTE to take over)"}),
            false, false};
  }

  static Reply ok(const std::string& fields) { return {"OK " + fields, false, false}; }

  static Reply err(const std::string& detail) {
    return {protocol_error_line(Error{ErrorCode::kIoParse, Phase::kInput, detail}), false,
            false};
  }

  CommunityService<V>* writer_ = nullptr;
  FollowerService<V>* follower_ = nullptr;
  ClusterInfoFn cluster_info_;
  std::string peer_;
  double slow_query_seconds_ = 0.0;  // 0 = slow-query events disabled
  std::int64_t line_no_ = 0;
  DeltaBatch<V> scratch_;
  std::map<std::string, obs::Histogram*> verb_hist_;  // session-local handle cache
};

}  // namespace commdet::serve
