// One protocol session: a line-in / line-out state machine over a
// CommunityService.  Transport-free on purpose — the daemon wraps one
// Session per connection (or one for stdio), and tests drive it
// directly with strings.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "commdet/graph/delta.hpp"
#include "commdet/io/delta_text.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/serve/protocol.hpp"
#include "commdet/serve/service.hpp"
#include "commdet/util/types.hpp"

namespace commdet::serve {

template <VertexId V>
class Session {
 public:
  struct Reply {
    std::optional<std::string> line;  // response to send, when any
    bool close = false;               // QUIT / SHUTDOWN: drop the connection
    bool shutdown = false;            // SHUTDOWN: stop the daemon
  };

  /// `peer` labels this session in error locations ("stdin:17",
  /// "conn-3:2"), mirroring the file readers' "path:line" contract.
  Session(CommunityService<V>& service, std::string peer)
      : service_(service), peer_(std::move(peer)) {}

  Reply handle_line(const std::string& line) {
    ++line_no_;
    const std::string where = peer_ + ":" + std::to_string(line_no_);
    try {
      if (line.empty() || line[0] == '#' || line[0] == '%') return {};
      if (is_delta_line(line)) return handle_delta(line, where);
      return handle_verb(line, where);
    } catch (const std::exception& e) {
      return {protocol_error_line(error_from_exception(e, Phase::kInput)), false, false};
    }
  }

 private:
  Reply handle_delta(const std::string& line, const std::string& where) {
    scratch_.deltas.clear();
    parse_delta_line(line, where, scratch_);  // throws the located error
    for (const EdgeDelta<V>& d : scratch_.deltas) {
      auto sent = service_.submit(d);
      if (!sent.has_value()) return {protocol_error_line(sent.error()), true, false};
    }
    return {};  // silent: bulk ingest costs no round trips
  }

  Reply handle_verb(const std::string& line, const std::string& where) {
    std::istringstream ls(line);
    std::string verb;
    ls >> verb;

    if (verb == "GET") {
      std::int64_t v = -1;
      if (!(ls >> v))
        return err(where + ": GET takes a vertex id");
      const auto snap = service_.snapshot();
      if (v < 0 || v >= static_cast<std::int64_t>(snap->labels->size()))
        return {protocol_error_line(
                    Error{ErrorCode::kBadEndpoint, Phase::kInput,
                          where + ": vertex " + std::to_string(v) + " outside [0, " +
                              std::to_string(snap->labels->size()) + ")"}),
                false, false};
      service_.note_query();
      return ok(std::to_string(v) + ' ' +
                std::to_string(static_cast<std::int64_t>(
                    (*snap->labels)[static_cast<std::size_t>(v)])) +
                ' ' + std::to_string(snap->epoch));
    }
    if (verb == "COMMUNITY") {
      std::int64_t c = -1;
      if (!(ls >> c))
        return err(where + ": COMMUNITY takes a community id");
      const auto snap = service_.snapshot();
      if (c < 0 || c >= static_cast<std::int64_t>(snap->communities->size()))
        return {protocol_error_line(
                    Error{ErrorCode::kBadEndpoint, Phase::kInput,
                          where + ": community " + std::to_string(c) + " outside [0, " +
                              std::to_string(snap->communities->size()) + ")"}),
                false, false};
      const CommunityStats& s = (*snap->communities)[static_cast<std::size_t>(c)];
      service_.note_query();
      return ok(std::to_string(c) + ' ' + std::to_string(s.size) + ' ' +
                std::to_string(s.internal_weight) + ' ' + std::to_string(s.volume) + ' ' +
                std::to_string(snap->epoch));
    }
    if (verb == "QUALITY") {
      const auto snap = service_.snapshot();
      service_.note_query();
      return ok(std::to_string(snap->epoch) + ' ' + std::to_string(snap->num_communities) +
                ' ' + protocol_f64(snap->modularity) + ' ' + protocol_f64(snap->coverage));
    }
    if (verb == "EPOCH") {
      service_.note_query();
      return ok(std::to_string(service_.snapshot()->epoch));
    }
    if (verb == "PING") return ok("pong " + std::to_string(service_.snapshot()->epoch));
    if (verb == "COMMIT") {
      auto committed = service_.commit();
      if (!committed.has_value()) return {protocol_error_line(committed.error()), false, false};
      return ok(std::to_string(committed.value()));
    }
    if (verb == "SAVE") {
      auto saved = service_.save();
      if (!saved.has_value()) return {protocol_error_line(saved.error()), false, false};
      return ok(std::to_string(saved.value().generation) + ' ' +
                std::to_string(saved.value().epoch));
    }
    if (verb == "STATS") {
      auto stats = service_.stats_json();
      if (!stats.has_value()) return {protocol_error_line(stats.error()), false, false};
      return ok(stats.value());
    }
    if (verb == "QUIT") return {std::string("OK bye"), true, false};
    if (verb == "SHUTDOWN") return {std::string("OK shutting-down"), true, true};
    return err(where + ": unknown verb '" + verb + "'");
  }

  static Reply ok(const std::string& fields) { return {"OK " + fields, false, false}; }

  static Reply err(const std::string& detail) {
    return {protocol_error_line(Error{ErrorCode::kIoParse, Phase::kInput, detail}), false,
            false};
  }

  CommunityService<V>& service_;
  std::string peer_;
  std::int64_t line_no_ = 0;
  DeltaBatch<V> scratch_;
};

}  // namespace commdet::serve
