// Wire protocol for the streaming service: newline-delimited text,
// symmetric over stdin/stdout, a Unix socket, or local TCP.
//
// Requests (one per line):
//
//   + u v [w]      ingest: insert (io/delta_text.hpp line format;
//   - u v                  silent on success, so bulk streams
//   = u v w                cost one line each and no round trip)
//   COMMIT         barrier: apply everything sent so far; acks epoch
//   GET v          membership of vertex v
//   COMMUNITY c    size / internal weight / volume of community c
//   QUALITY        epoch, community count, modularity, coverage
//   EPOCH          current committed epoch
//   STATS          one-line JSON: service gauges + the run report's
//                  "dynamic" object
//   SAVE           persist a snapshot generation now
//   PING           liveness
//   HEALTH         one-line JSON: role (writer/follower), epoch,
//                  replication lag, WAL cursor
//   CLUSTER        one-line JSON: role, cluster term, lease remaining,
//                  peer list + ranks, elections won.  "CLUSTER peek"
//                  answers the fixed key=value one-liner
//                  ("OK CLUSTER role=... term=... epoch=... wal_seq=...
//                  rank=...") that election polls parse
//   METRICS        live telemetry, both roles.  The one multi-line
//                  reply in the protocol: "OK METRICS <nlines>"
//                  followed by exactly <nlines> lines of Prometheus
//                  text exposition.  "METRICS json" answers one line:
//                  "OK <commdet-telemetry v1 JSON>"
//   PROMOTE        follower only: take over as writer (failover)
//   QUIT           close this connection
//   SHUTDOWN       graceful daemon drain-and-checkpoint stop
//   # ...          comment, ignored (also '%')
//
// Responses:
//
//   OK <fields...>                      verb-specific, one line
//   ERR <code> <phase> <detail>         structured error, one line
//
// Queries are answered from the last *committed* epoch (every OK line
// that reports state carries the epoch it came from); a client that
// needs its own writes visible issues COMMIT first.  Doubles are
// printed with %.17g, so equal epochs compare bit-for-bit as text.
//
// Follower endpoints (serve/follower.hpp) answer the same query verbs
// from their replicated epoch, refuse mutations with "ERR read-only",
// and refuse queries beyond the staleness budget with "ERR stale-read".
// The replication connection itself (writer dialing follower) starts
// with "REPL HELLO ..." and speaks the shipping grammar documented in
// serve/replication.hpp, not this request protocol.
#pragma once

#include <string>

#include "commdet/obs/json.hpp"
#include "commdet/robust/error.hpp"

namespace commdet::serve {

/// %.17g — round-trips every double exactly (the bit-for-bit epoch
/// comparison in recovery tests relies on it).  Delegates to the one
/// shared formatter so protocol replies, HEALTH JSON, and the METRICS
/// exposition can never drift on the same value.
[[nodiscard]] inline std::string protocol_f64(double v) { return obs::format_f64(v); }

/// One-line "ERR <code> <phase> <detail>"; newlines in the detail are
/// flattened so the framing survives arbitrary error text.
[[nodiscard]] inline std::string protocol_error_line(const Error& e) {
  std::string detail = e.detail;
  for (char& c : detail)
    if (c == '\n' || c == '\r') c = ' ';
  return "ERR " + std::string(to_string(e.code)) + ' ' + std::string(to_string(e.phase)) +
         ' ' + detail;
}

}  // namespace commdet::serve
