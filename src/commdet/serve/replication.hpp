// WAL-shipping replication: the writer side.
//
// The writer daemon streams committed WAL records — the same
// "B ... E" intent + "C ... c" commit text the local log persists — to
// N follower daemons over the existing newline-framed protocol.  One
// ReplicationManager owns one FollowerLink (thread + bounded queue) per
// endpoint:
//
//   * on_commit() is called on the writer thread after every published
//     epoch.  It only pushes into per-link bounded queues — it NEVER
//     blocks, and a full queue is shed wholesale (the link falls back
//     to WAL-tail catch-up from disk, or a snapshot transfer when the
//     tail was pruned).  A slow or dead follower can therefore never
//     backpressure the writer into unavailability.
//   * Each link dials its follower, handshakes (config fingerprint +
//     epoch exchange), bootstraps a behind follower with a
//     snapshot-generation transfer (base64 over the line protocol)
//     plus WAL-tail catch-up, then ships records as they commit.
//   * Heartbeats ("HB <epoch>") flow when the link is idle; every send
//     and receive is bounded by an I/O timeout, and a silent or broken
//     peer triggers reconnect with jittered exponential backoff.
//   * The follower acks each durably applied record ("ACK <seq>"), so
//     the link maintains an acked cursor; HEALTH reports it per
//     follower and the writer's replication lag is epoch - min(acked).
//
// Consistency model: followers replay only committed records, in
// sequence, CRC-verified — a follower is always a prefix of the
// writer's committed history (bounded staleness, never divergence).
#pragma once

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "commdet/obs/eventlog.hpp"
#include "commdet/robust/checkpoint.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/robust/fault_injection.hpp"
#include "commdet/serve/wal.hpp"
#include "commdet/util/types.hpp"

namespace commdet::serve {

// ---------------------------------------------------------------------------
// base64 (snapshot bytes over the text protocol)

namespace detail {
inline constexpr std::string_view kB64 =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
}  // namespace detail

[[nodiscard]] inline std::string base64_encode(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::string out;
  out.reserve((n + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= n; i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(p[i]) << 16) |
                            (static_cast<std::uint32_t>(p[i + 1]) << 8) | p[i + 2];
    out += detail::kB64[(v >> 18) & 63];
    out += detail::kB64[(v >> 12) & 63];
    out += detail::kB64[(v >> 6) & 63];
    out += detail::kB64[v & 63];
  }
  if (i + 1 == n) {
    const std::uint32_t v = static_cast<std::uint32_t>(p[i]) << 16;
    out += detail::kB64[(v >> 18) & 63];
    out += detail::kB64[(v >> 12) & 63];
    out += "==";
  } else if (i + 2 == n) {
    const std::uint32_t v = (static_cast<std::uint32_t>(p[i]) << 16) |
                            (static_cast<std::uint32_t>(p[i + 1]) << 8);
    out += detail::kB64[(v >> 18) & 63];
    out += detail::kB64[(v >> 12) & 63];
    out += detail::kB64[(v >> 6) & 63];
    out += '=';
  }
  return out;
}

/// Appends the decoded bytes to `out`; false on any malformed input
/// (a corrupted transfer must fail loudly, not truncate silently).
[[nodiscard]] inline bool base64_decode(std::string_view in, std::string& out) {
  if (in.size() % 4 != 0) return false;
  static constexpr auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  out.reserve(out.size() + in.size() / 4 * 3);
  for (std::size_t i = 0; i < in.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = in[i + j];
      if (c == '=') {
        // Padding is only legal in the final group's last two slots.
        if (i + 4 != in.size() || j < 2) return false;
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) return false;  // data after '='
      const int d = value_of(c);
      if (d < 0) return false;
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    out += static_cast<char>((v >> 16) & 0xff);
    if (pad < 2) out += static_cast<char>((v >> 8) & 0xff);
    if (pad < 1) out += static_cast<char>(v & 0xff);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Incremental record assembly (the follower's receive side)

/// Reassembles WAL records from a shipped line stream.  Grammar and
/// checksums are exactly serve/wal.hpp's — but where the file reader
/// treats a bad record as an ordinary torn tail, a shipped record that
/// fails its CRC or framing is a hard typed error: the follower must
/// refuse it (and force the writer to resend) rather than ever apply
/// bytes that differ from what the writer committed.
template <VertexId V>
class WalRecordAssembler {
 public:
  /// Feeds one line; returns the completed record when this line
  /// finished one, std::nullopt while mid-record.  Throws CommdetError
  /// (kReplicationBroken / kIoParse) on malformed framing or checksum
  /// mismatch; the assembler resets itself on error.
  std::optional<WalRecord<V>> feed(const std::string& line) {
    try {
      return feed_impl(line);
    } catch (...) {
      reset();
      throw;
    }
  }

  /// Drops any mid-record state (link dropped mid-record: the writer
  /// re-ships the whole record after reconnect).
  void reset() noexcept {
    state_ = State::kIdle;
    lines_.clear();
    remaining_ = 0;
    rec_ = WalRecord<V>{};
  }

  [[nodiscard]] bool mid_record() const noexcept { return state_ != State::kIdle; }

 private:
  enum class State { kIdle, kIntentLines, kIntentSeal, kOutcome, kCommitLines, kCommitSeal };

  [[noreturn]] void fail(const std::string& what) {
    throw_error(ErrorCode::kReplicationBroken, Phase::kDynamic,
                "shipped WAL record refused: " + what);
  }

  std::optional<WalRecord<V>> feed_impl(const std::string& line) {
    switch (state_) {
      case State::kIdle: {
        std::istringstream hs(line);
        std::string tag;
        std::int64_t seq = 0, ndeltas = 0;
        if (!(hs >> tag >> seq >> ndeltas) || tag != "B" || ndeltas < 0)
          fail("expected intent header, got '" + line + "'");
        rec_ = WalRecord<V>{};
        rec_.seq = seq;
        lines_.clear();
        remaining_ = ndeltas;
        state_ = remaining_ > 0 ? State::kIntentLines : State::kIntentSeal;
        return std::nullopt;
      }
      case State::kIntentLines:
        lines_.push_back(line);
        if (--remaining_ == 0) state_ = State::kIntentSeal;
        return std::nullopt;
      case State::kIntentSeal: {
        std::istringstream es(line);
        std::string tag;
        std::int64_t seq = 0;
        std::uint32_t crc = 0;
        if (!(es >> tag >> seq >> crc) || tag != "E" || seq != rec_.seq)
          fail("bad intent seal for seq " + std::to_string(rec_.seq));
        if (crc != detail::crc_lines(lines_))
          fail("intent CRC mismatch at seq " + std::to_string(rec_.seq));
        for (std::size_t i = 0; i < lines_.size(); ++i)
          parse_delta_line(lines_[i],
                           "shipped record " + std::to_string(rec_.seq) + " delta " +
                               std::to_string(i + 1),
                           rec_.batch);
        lines_.clear();
        state_ = State::kOutcome;
        return std::nullopt;
      }
      case State::kOutcome: {
        std::istringstream cs(line);
        std::string tag;
        std::int64_t seq = 0, nchanges = 0;
        if (!(cs >> tag >> seq >> nchanges >> rec_.num_communities >> rec_.modularity >>
              rec_.coverage >> rec_.labels_crc) ||
            tag != "C" || seq != rec_.seq || nchanges < 0)
          fail("expected commit header for seq " + std::to_string(rec_.seq));
        lines_.clear();
        lines_.push_back(line);  // commit seal covers the header line too
        remaining_ = nchanges;
        state_ = remaining_ > 0 ? State::kCommitLines : State::kCommitSeal;
        return std::nullopt;
      }
      case State::kCommitLines:
        lines_.push_back(line);
        if (--remaining_ == 0) state_ = State::kCommitSeal;
        return std::nullopt;
      case State::kCommitSeal: {
        std::istringstream ts(line);
        std::string tag;
        std::int64_t seq = 0;
        std::uint32_t crc = 0;
        if (!(ts >> tag >> seq >> crc) || tag != "c" || seq != rec_.seq)
          fail("bad commit seal for seq " + std::to_string(rec_.seq));
        if (crc != detail::crc_lines(lines_))
          fail("commit CRC mismatch at seq " + std::to_string(rec_.seq));
        rec_.changes.reserve(lines_.size() - 1);
        for (std::size_t i = 1; i < lines_.size(); ++i) {
          std::istringstream vs(lines_[i]);
          typename DynamicCommunities<V>::LabelChange ch;
          if (!(vs >> ch.vertex >> ch.label))
            fail("malformed change line in seq " + std::to_string(rec_.seq));
          rec_.changes.push_back(ch);
        }
        WalRecord<V> done = std::move(rec_);
        reset();
        return done;
      }
    }
    fail("assembler in impossible state");
  }

  State state_ = State::kIdle;
  std::vector<std::string> lines_;
  std::int64_t remaining_ = 0;
  WalRecord<V> rec_;
};

// ---------------------------------------------------------------------------
// Endpoints and timed socket I/O

/// Dials a follower endpoint: all-digits = loopback TCP port, anything
/// else = Unix-domain socket path.  Returns the connected fd or -1.
[[nodiscard]] inline int dial_endpoint(const std::string& endpoint) {
  const bool is_port =
      !endpoint.empty() &&
      endpoint.find_first_not_of("0123456789") == std::string::npos;
  if (is_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(std::stoi(endpoint)));
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (endpoint.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, endpoint.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

namespace detail {

/// Newline-framed I/O over one socket with per-operation timeouts.
/// Every blocking point is bounded, so a stalled peer can only stall
/// the owning link thread for one timeout — never forever.
class LineSocket {
 public:
  LineSocket(int fd, double timeout_seconds)
      : fd_(fd), timeout_ms_(static_cast<int>(timeout_seconds * 1000.0)) {
    last_read_ = std::chrono::steady_clock::now();
  }

  /// Writes everything or fails; a peer that stops draining its socket
  /// trips the POLLOUT timeout (this is how a stalled follower is shed).
  [[nodiscard]] bool write_all(const std::string& data) {
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      struct pollfd pfd {fd_, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms_);
      if (pr == 0) return false;  // send window closed for a full timeout
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  [[nodiscard]] bool write_line(const std::string& line) { return write_all(line + "\n"); }

  /// 1 = got a line, 0 = nothing within `timeout_ms`, -1 = EOF/error.
  [[nodiscard]] int read_line(std::string& line, int timeout_ms) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buf_, 0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        buf_.erase(0, nl + 1);
        return 1;
      }
      const auto now = std::chrono::steady_clock::now();
      const int wait_ms =
          timeout_ms <= 0
              ? 0
              : static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                     deadline - now)
                                     .count());
      if (timeout_ms > 0 && wait_ms <= 0) return 0;
      struct pollfd pfd {fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms <= 0 ? 0 : wait_ms);
      if (pr == 0) return 0;
      if (pr < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      if (n <= 0) return -1;
      buf_.append(chunk, static_cast<std::size_t>(n));
      last_read_ = std::chrono::steady_clock::now();
    }
  }

  [[nodiscard]] double seconds_since_last_read() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - last_read_)
        .count();
  }

 private:
  int fd_;
  int timeout_ms_;
  std::string buf_;
  std::chrono::steady_clock::time_point last_read_;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// ReplicationManager

struct ReplicationOptions {
  /// Follower endpoints (Unix socket path or loopback TCP port).
  std::vector<std::string> endpoints;

  /// Per-follower bound on queued committed records.  Overflow sheds
  /// the whole queue (the link re-syncs from disk / snapshot); the
  /// writer thread never waits.
  std::int64_t max_queue_records = 256;

  /// Idle-link heartbeat cadence.
  double heartbeat_interval_seconds = 1.0;

  /// Per-operation socket timeout, and the ack-progress deadline: a
  /// link with unacked records and no bytes from the peer for this
  /// long reconnects.
  double io_timeout_seconds = 5.0;

  /// Jittered exponential reconnect backoff bounds.
  double reconnect_min_seconds = 0.05;
  double reconnect_max_seconds = 2.0;

  /// Cluster term this writer ships under.  0 = unclustered: HELLO/HB
  /// keep the legacy wire format (no trailing term/lease fields) and
  /// followers never start elections.
  std::int64_t term = 0;

  /// Lease duration granted to followers on every stamped HELLO/HB.
  double lease_seconds = 3.0;

  [[nodiscard]] bool enabled() const noexcept { return !endpoints.empty(); }
};

/// One follower link's externally visible state (HEALTH, tests, bench).
struct FollowerLinkStatus {
  std::string endpoint;
  bool connected = false;
  std::int64_t acked_epoch = -1;  // highest durably applied epoch acked
  std::int64_t shed = 0;          // bounded-queue overflows (forced re-syncs)
  std::int64_t reconnects = 0;
  std::int64_t snapshots_sent = 0;
  /// Seconds since acked_epoch last advanced (since link creation if it
  /// never has).  Telemetry reports this as the link's lag in seconds
  /// when the follower is behind, 0 once it has caught up.
  double ack_age_seconds = 0.0;
  std::string last_error;
};

template <VertexId V>
class ReplicationManager {
  struct Link {
    explicit Link(std::string ep) : endpoint(std::move(ep)) {}
    std::string endpoint;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<std::int64_t, std::shared_ptr<const std::string>>> queue;
    std::string last_error;  // guarded by mu
    std::atomic<bool> connected{false};
    std::atomic<std::int64_t> acked{-1};
    std::atomic<std::int64_t> shed{0};
    std::atomic<std::int64_t> reconnects{0};
    std::atomic<std::int64_t> snapshots_sent{0};
    std::atomic<std::int64_t> last_ack_change_us{0};  // monotonic; 0 = never acked
    std::uint64_t jitter_state = 0;  // link thread only
    std::thread thread;
  };

  /// Monotonic microseconds for ack-age accounting (differences only).
  [[nodiscard]] static std::int64_t mono_us() noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Max-advance of lk.acked, stamping the progress time on success.
  static void advance_acked(Link& lk, std::int64_t e) noexcept {
    std::int64_t cur = lk.acked.load(std::memory_order_relaxed);
    bool advanced = false;
    while (cur < e) {
      if (lk.acked.compare_exchange_weak(cur, e, std::memory_order_relaxed)) {
        advanced = true;
        break;
      }
    }
    if (advanced) lk.last_ack_change_us.store(mono_us(), std::memory_order_relaxed);
  }

 public:
  /// `state_dir` / `wal_dir` are the writer's own snapshot + WAL roots
  /// (bootstrap and catch-up read them); `fingerprint` is the dynamic
  /// configuration fingerprint both ends must share.
  ReplicationManager(ReplicationOptions opts, std::string state_dir, std::string wal_dir,
                     std::uint64_t fingerprint, std::int64_t current_epoch)
      : opts_(std::move(opts)),
        state_dir_(std::move(state_dir)),
        wal_dir_(std::move(wal_dir)),
        fingerprint_(fingerprint),
        epoch_(current_epoch) {
    links_.reserve(opts_.endpoints.size());
    for (const std::string& ep : opts_.endpoints)
      links_.push_back(std::make_unique<Link>(ep));
    for (auto& lk : links_) {
      Link* l = lk.get();
      l->last_ack_change_us.store(mono_us(), std::memory_order_relaxed);
      l->thread = std::thread([this, l] { link_loop(*l); });
    }
  }

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  ~ReplicationManager() { shutdown(); }

  /// Writer thread, after publish: enqueue the committed record for
  /// every link.  Bounded and non-blocking by contract.
  void on_commit(std::int64_t seq, std::shared_ptr<const std::string> record) {
    // Advance the epoch first so link threads never see a queued seq
    // beyond the target epoch.
    std::int64_t cur = epoch_.load(std::memory_order_relaxed);
    while (cur < seq &&
           !epoch_.compare_exchange_weak(cur, seq, std::memory_order_release)) {
    }
    for (auto& lk : links_) {
      {
        std::lock_guard<std::mutex> g(lk->mu);
        if (static_cast<std::int64_t>(lk->queue.size()) >= opts_.max_queue_records) {
          lk->queue.clear();  // shed: this follower re-syncs from disk
          lk->shed.fetch_add(1, std::memory_order_relaxed);
          obs::log_event("follower_shed", seq,
                         {obs::EventField::of("endpoint", std::string_view(lk->endpoint))});
        }
        lk->queue.emplace_back(seq, record);
      }
      lk->cv.notify_one();
    }
  }

  [[nodiscard]] std::vector<FollowerLinkStatus> status() const {
    std::vector<FollowerLinkStatus> out;
    out.reserve(links_.size());
    for (const auto& lk : links_) {
      FollowerLinkStatus s;
      s.endpoint = lk->endpoint;
      s.connected = lk->connected.load(std::memory_order_relaxed);
      s.acked_epoch = lk->acked.load(std::memory_order_relaxed);
      s.shed = lk->shed.load(std::memory_order_relaxed);
      s.reconnects = lk->reconnects.load(std::memory_order_relaxed);
      s.snapshots_sent = lk->snapshots_sent.load(std::memory_order_relaxed);
      if (s.acked_epoch >= epoch_.load(std::memory_order_relaxed)) {
        s.ack_age_seconds = 0.0;  // caught up: no lag regardless of idle time
      } else {
        const std::int64_t since = lk->last_ack_change_us.load(std::memory_order_relaxed);
        s.ack_age_seconds = static_cast<double>(mono_us() - since) * 1e-6;
      }
      {
        std::lock_guard<std::mutex> g(lk->mu);
        s.last_error = lk->last_error;
      }
      out.push_back(std::move(s));
    }
    return out;
  }

  /// Lowest acked epoch across followers (-1 until every follower has
  /// acked something); writer lag = epoch - min_acked().
  [[nodiscard]] std::int64_t min_acked() const {
    std::int64_t m = std::numeric_limits<std::int64_t>::max();
    for (const auto& lk : links_) m = std::min(m, lk->acked.load(std::memory_order_relaxed));
    return links_.empty() ? -1 : m;
  }

  [[nodiscard]] std::size_t num_links() const noexcept { return links_.size(); }

  /// Highest term a follower has fenced this writer with (via a typed
  /// `ERR stale-term` refusal); 0 while unfenced.  A non-zero value
  /// means a newer leader exists — the daemon's cluster supervisor
  /// demotes this writer and rejoins it as a follower.
  [[nodiscard]] std::int64_t fenced_term() const noexcept {
    return fenced_term_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t term() const noexcept { return opts_.term; }

  void shutdown() {
    stop_.store(true, std::memory_order_release);
    for (auto& lk : links_) lk->cv.notify_all();
    for (auto& lk : links_)
      if (lk->thread.joinable()) lk->thread.join();
  }

 private:
  void note_error(Link& lk, std::string what) {
    std::lock_guard<std::mutex> g(lk.mu);
    lk.last_error = std::move(what);
  }

  /// The optional cluster suffix for HELLO/HB frames; empty in legacy
  /// (term 0) mode so the unclustered wire format is byte-identical.
  [[nodiscard]] std::string term_suffix() const {
    if (opts_.term <= 0) return "";
    return ' ' + std::to_string(opts_.term) + ' ' +
           std::to_string(static_cast<std::int64_t>(opts_.lease_seconds * 1000.0));
  }

  /// A peer refused a frame with `ERR stale-term ...`: record the term
  /// it says it observed (max-advance; the detail carries
  /// "observed term <T>", and when unparsable any term above ours
  /// still forces demotion).
  void note_fenced(const std::string& err_line) {
    std::int64_t observed = opts_.term + 1;
    const std::size_t pos = err_line.find("observed term ");
    if (pos != std::string::npos) {
      try {
        observed = std::stoll(err_line.substr(pos + 14));
      } catch (...) {
      }
    }
    std::int64_t cur = fenced_term_.load(std::memory_order_relaxed);
    while (cur < observed &&
           !fenced_term_.compare_exchange_weak(cur, observed, std::memory_order_relaxed)) {
    }
  }

  /// True when `line` is a typed ERR reply whose code is stale-term.
  [[nodiscard]] static bool is_stale_term_err(const std::string& line) {
    std::istringstream ls(line);
    std::string tag, code;
    return (ls >> tag >> code) && tag == "ERR" && code == "stale-term";
  }

  /// Deterministic jitter (no global RNG, no wall clock): xorshift over
  /// a per-link counter.
  static std::uint64_t jitter_step(std::uint64_t x) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  }

  void backoff_sleep(Link& lk, std::uint64_t attempt) {
    double base = opts_.reconnect_min_seconds;
    for (std::uint64_t i = 0; i < attempt && base < opts_.reconnect_max_seconds; ++i)
      base *= 2.0;
    base = std::min(base, opts_.reconnect_max_seconds);
    lk.jitter_state = jitter_step(lk.jitter_state ? lk.jitter_state
                                                  : 0x9e3779b97f4a7c15ull + attempt);
    const double frac = 0.5 + 0.5 * static_cast<double>(lk.jitter_state % 1024) / 1024.0;
    const auto dur = std::chrono::duration<double>(base * frac);
    std::unique_lock<std::mutex> g(lk.mu);
    lk.cv.wait_for(g, dur, [this] { return stop_.load(std::memory_order_acquire); });
  }

  void link_loop(Link& lk) {
    std::uint64_t attempt = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      const int fd = dial_endpoint(lk.endpoint);
      if (fd < 0) {
        note_error(lk, "connect failed");
        backoff_sleep(lk, ++attempt);
        continue;
      }
      lk.connected.store(true, std::memory_order_relaxed);
      bool had_session = false;
      try {
        had_session = run_connection(lk, fd);
      } catch (const std::exception& e) {
        // A fault-injected (or otherwise unexpected) throw mid-ship is a
        // dropped link, not a daemon crash: close, back off, reconnect.
        note_error(lk, e.what());
      }
      ::close(fd);
      lk.connected.store(false, std::memory_order_relaxed);
      if (stop_.load(std::memory_order_acquire)) break;
      lk.reconnects.fetch_add(1, std::memory_order_relaxed);
      obs::log_event("follower_reconnect", lk.acked.load(std::memory_order_relaxed),
                     {obs::EventField::of("endpoint", std::string_view(lk.endpoint))});
      attempt = had_session ? 1 : attempt + 1;
      backoff_sleep(lk, attempt);
    }
  }

  /// Drains any pending "ACK ..." / "ERR ..." lines; returns false when
  /// the connection must be abandoned.
  [[nodiscard]] bool drain_acks(Link& lk, detail::LineSocket& io, int timeout_ms) {
    std::string line;
    for (;;) {
      const int r = io.read_line(line, timeout_ms);
      if (r < 0) return false;
      if (r == 0) return true;
      timeout_ms = 0;  // only the first read waits
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "ACK") {
        std::string what;
        ls >> what;
        std::int64_t e = -1;
        if (what == "HB" || what == "SNAP") {
          ls >> e;
        } else {
          try {
            e = std::stoll(what);
          } catch (...) {
            e = -1;
          }
        }
        if (e >= 0) advance_acked(lk, e);
      } else if (tag == "ERR") {
        if (is_stale_term_err(line)) note_fenced(line);
        note_error(lk, line);
        return false;
      }
      // Anything else is protocol noise; ignore (the peer may be a
      // newer version with extra chatter).
    }
  }

  /// True when the head of the queue is exactly `next_seq` (pops it);
  /// drops stale entries below it on the way.
  [[nodiscard]] std::shared_ptr<const std::string> pop_if_head(Link& lk,
                                                               std::int64_t next_seq) {
    std::lock_guard<std::mutex> g(lk.mu);
    while (!lk.queue.empty() && lk.queue.front().first < next_seq) lk.queue.pop_front();
    if (!lk.queue.empty() && lk.queue.front().first == next_seq) {
      auto rec = std::move(lk.queue.front().second);
      lk.queue.pop_front();
      return rec;
    }
    return nullptr;
  }

  /// Waits for new queued work (or stop) up to the heartbeat interval;
  /// true when something is queued.
  [[nodiscard]] bool wait_for_work(Link& lk) {
    std::unique_lock<std::mutex> g(lk.mu);
    lk.cv.wait_for(g,
                   std::chrono::duration<double>(opts_.heartbeat_interval_seconds),
                   [this, &lk] {
                     return stop_.load(std::memory_order_acquire) || !lk.queue.empty();
                   });
    return !lk.queue.empty();
  }

  /// Ships the newest snapshot generation (base64 over the line
  /// protocol) and waits for the follower to load + ack it.  On success
  /// `next_seq` resumes right after the snapshot's epoch.
  [[nodiscard]] bool send_snapshot(Link& lk, detail::LineSocket& io,
                                   std::int64_t& next_seq) {
    const auto gens = list_checkpoints(state_dir_);
    if (gens.empty()) {
      note_error(lk, "no snapshot generation to bootstrap from");
      return false;
    }
    std::string bytes;
    {
      std::ifstream in(gens.front().second, std::ios::binary);
      if (!in) {
        note_error(lk, "cannot read snapshot " + gens.front().second);
        return false;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      bytes = std::move(ss).str();
    }
    const std::uint32_t crc = crc32_update(0, bytes.data(), bytes.size());
    if (!io.write_line("SNAP BEGIN " + std::to_string(bytes.size()) + ' ' +
                       std::to_string(crc)))
      return false;
    constexpr std::size_t kChunk = 3 * 1024;  // 4 KiB base64 per line
    for (std::size_t off = 0; off < bytes.size(); off += kChunk) {
      if (stop_.load(std::memory_order_acquire)) return false;
      const std::size_t n = std::min(kChunk, bytes.size() - off);
      if (!io.write_line("SNAP D " + base64_encode(bytes.data() + off, n))) return false;
    }
    if (!io.write_line("SNAP END")) return false;
    // Loading a big graph takes a while; give the follower extra room.
    const int load_timeout_ms =
        std::max(60000, static_cast<int>(opts_.io_timeout_seconds * 6000.0));
    std::string line;
    if (io.read_line(line, load_timeout_ms) != 1) return false;
    std::istringstream ls(line);
    std::string tag, what;
    std::int64_t epoch = -1;
    if (!(ls >> tag >> what >> epoch) || tag != "ACK" || what != "SNAP" || epoch < 0) {
      note_error(lk, "snapshot transfer refused: " + line);
      return false;
    }
    next_seq = epoch + 1;
    advance_acked(lk, epoch);
    lk.snapshots_sent.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// One connected session; returns true when a handshake completed
  /// (resets the backoff), false on handshake failure.
  bool run_connection(Link& lk, int fd) {
    detail::LineSocket io(fd, opts_.io_timeout_seconds);
    const int io_timeout_ms = static_cast<int>(opts_.io_timeout_seconds * 1000.0);
    if (!io.write_line("REPL HELLO " + std::to_string(fingerprint_) + ' ' +
                       std::to_string(epoch_.load(std::memory_order_acquire)) +
                       term_suffix()))
      return false;
    std::string line;
    if (io.read_line(line, io_timeout_ms) != 1) {
      note_error(lk, "handshake timed out");
      return false;
    }
    std::int64_t fepoch = -2;
    {
      std::istringstream ls(line);
      std::string tag, okay;
      if (!(ls >> tag >> okay >> fepoch) || tag != "REPL" || okay != "OK" || fepoch < -1) {
        if (is_stale_term_err(line)) note_fenced(line);
        note_error(lk, "handshake refused: " + line);
        return false;
      }
    }
    if (fepoch > epoch_.load(std::memory_order_acquire)) {
      // A follower ahead of this writer is a topology error (promoted
      // elsewhere, or mixed state dirs); never ship into it.
      note_error(lk, "follower is ahead of the writer (epoch " + std::to_string(fepoch) +
                         ")");
      return false;
    }
    if (fepoch >= 0) advance_acked(lk, fepoch);
    note_error(lk, "");
    std::int64_t next_seq = fepoch + 1;  // fepoch == -1: nothing yet, snapshot path

    while (!stop_.load(std::memory_order_acquire)) {
      if (!drain_acks(lk, io, 0)) return true;
      const std::int64_t target = epoch_.load(std::memory_order_acquire);
      if (fepoch < 0) {
        if (!send_snapshot(lk, io, next_seq)) return true;
        fepoch = next_seq - 1;
        continue;
      }
      if (next_seq <= target) {
        if (auto rec = pop_if_head(lk, next_seq)) {
          COMMDET_FAULT_POINT(fault::kReplShip, Phase::kDynamic);
          if (!io.write_all(*rec)) return true;
          ++next_seq;
        } else {
          // Queue gap (shed, or records committed before this link
          // connected): catch up from the on-disk WAL tail; when even
          // the disk no longer has the next record (segments pruned),
          // fall back to a snapshot transfer.
          auto records = read_wal_records<V>(wal_dir_, next_seq - 1);
          if (records.empty()) {
            if (!send_snapshot(lk, io, next_seq)) return true;
            fepoch = next_seq - 1;
            continue;
          }
          for (const WalRecord<V>& r : records) {
            if (stop_.load(std::memory_order_acquire)) return true;
            COMMDET_FAULT_POINT(fault::kReplShip, Phase::kDynamic);
            if (!io.write_all(serialize_wal_record(r))) return true;
            next_seq = r.seq + 1;
            if (!drain_acks(lk, io, 0)) return true;
          }
        }
      } else {
        // Fully shipped: idle until new work, heartbeating so the
        // follower can track writer liveness and epoch.
        if (!wait_for_work(lk)) {
          if (!io.write_line("HB " +
                             std::to_string(epoch_.load(std::memory_order_acquire)) +
                             term_suffix()))
            return true;
          if (!drain_acks(lk, io, io_timeout_ms)) return true;
        }
      }
      // Progress deadline: unacked records but a silent peer for a full
      // timeout means the follower is stuck — reconnect (and possibly
      // re-bootstrap) instead of waiting forever.
      if (lk.acked.load(std::memory_order_relaxed) < next_seq - 1 &&
          io.seconds_since_last_read() > opts_.io_timeout_seconds) {
        note_error(lk, "no ack progress within timeout");
        return true;
      }
    }
    return true;
  }

  ReplicationOptions opts_;
  std::string state_dir_;
  std::string wal_dir_;
  std::uint64_t fingerprint_ = 0;
  std::atomic<std::int64_t> epoch_{0};
  std::atomic<std::int64_t> fenced_term_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace commdet::serve
