// Epoch-published membership snapshots: the reader side of the
// streaming service.
//
// The writer thread commits a batch, then publishes one immutable
// MembershipSnapshot through an atomic shared_ptr swap.  Readers grab
// the pointer (acquire) and answer every query from that frozen view —
// they never block on the writer, never observe a half-applied batch,
// and a snapshot stays alive for as long as any in-flight query holds
// it, however many epochs the writer publishes meanwhile.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "commdet/dyn/dynamic_communities.hpp"
#include "commdet/util/types.hpp"

namespace commdet::serve {

/// One fully committed epoch, frozen: membership labels, per-community
/// stats, and the quality scalars of the clustering that produced them.
template <VertexId V>
struct MembershipSnapshot {
  std::int64_t epoch = 0;  // committed batches (0 = initial detection)
  std::int64_t num_communities = 0;
  double modularity = 0.0;
  double coverage = 0.0;
  std::shared_ptr<const std::vector<V>> labels;
  std::shared_ptr<const std::vector<CommunityStats>> communities;
};

/// Single-writer / many-reader snapshot exchange.  publish() is a
/// release store; current() is an acquire load, so everything the
/// writer wrote into the snapshot happens-before any reader's use.
template <VertexId V>
class EpochPublisher {
 public:
  void publish(std::shared_ptr<const MembershipSnapshot<V>> snap) noexcept {
    current_.store(std::move(snap), std::memory_order_release);
  }

  [[nodiscard]] std::shared_ptr<const MembershipSnapshot<V>> current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::shared_ptr<const MembershipSnapshot<V>>> current_;
};

}  // namespace commdet::serve
