// Multilevel (V-cycle) refinement.
//
// The paper's algorithm coarsens bottom-up; its graph-partitioning
// ancestors (multilevel k-way partitioners) pair that coarsening with
// refinement at *every* level of the hierarchy on the way back down —
// coarse moves first (whole proto-communities migrate cheaply), then
// progressively finer ones, ending with single-vertex moves.  This
// module implements that full V-cycle on top of the dendrogram the
// driver records and the flat refine_partition() kernel:
//
//   for level k = K-1 .. 0:
//     G_k  := original graph aggregated by the level-k assignment
//     move level-k communities between final communities via
//     refine_partition(G_k, assignment)
//     project the improved assignment down to level k-1
//
// Because each G_k node is one level-k community, refining G_k moves
// whole subtrees of the dendrogram; level 0 degenerates to the flat
// vertex refinement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "commdet/core/clustering.hpp"
#include "commdet/core/extraction.hpp"
#include "commdet/core/metrics.hpp"
#include "commdet/graph/community_graph.hpp"
#include "commdet/refine/refine.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct MultilevelRefineStats {
  int levels_refined = 0;
  std::int64_t total_moves = 0;
  double modularity_before = 0.0;
  double modularity_after = 0.0;
};

/// V-cycle refinement of `clustering` over the original graph g.
/// Requires the clustering to carry its hierarchy
/// (AgglomerationOptions::track_hierarchy).  Updates
/// clustering.community, final_modularity, and num_communities in place.
template <VertexId V>
MultilevelRefineStats multilevel_refine(const CommunityGraph<V>& g,
                                        Clustering<V>& clustering,
                                        const RefineOptions& opts = {}) {
  MultilevelRefineStats stats;
  const int depth = static_cast<int>(clustering.hierarchy.size());
  const auto nv = static_cast<std::int64_t>(g.nv);
  if (nv == 0) return stats;

  bool first = true;
  // Current assignment of original vertices, updated coarse-to-fine.
  std::vector<V> assignment = clustering.community;

  for (int level = depth - 1; level >= 0; --level) {
    // Level-k nodes: communities after `level` contractions.
    const auto node_of = clustering.labels_at_level(level);
    std::int64_t num_nodes = 0;
    for (const V n : node_of) num_nodes = std::max<std::int64_t>(num_nodes, n + 1);

    // Aggregate the original graph by level-k nodes, and lift the
    // current assignment onto those nodes.
    const auto coarse = aggregate_by_labels(g, std::span<const V>(node_of));
    std::vector<V> node_assignment(static_cast<std::size_t>(num_nodes));
    parallel_for(nv, [&](std::int64_t v) {
      node_assignment[static_cast<std::size_t>(node_of[static_cast<std::size_t>(v)])] =
          assignment[static_cast<std::size_t>(v)];
    });

    const auto r = refine_partition(coarse, node_assignment, opts);
    if (first) {
      stats.modularity_before = r.modularity_before;
      first = false;
    }
    stats.modularity_after = r.modularity_after;
    stats.total_moves += r.moves;
    ++stats.levels_refined;

    // Project the refined (re-densified) node assignment back to
    // original vertices.
    parallel_for(nv, [&](std::int64_t v) {
      assignment[static_cast<std::size_t>(v)] =
          node_assignment[static_cast<std::size_t>(node_of[static_cast<std::size_t>(v)])];
    });
  }

  if (depth == 0) {
    // No hierarchy: degenerate to flat refinement.
    const auto r = refine_partition(g, assignment, opts);
    stats.modularity_before = r.modularity_before;
    stats.modularity_after = r.modularity_after;
    stats.total_moves += r.moves;
    stats.levels_refined = 1;
  }

  clustering.community = std::move(assignment);
  const auto q = evaluate_partition(
      g, std::span<const V>(clustering.community.data(), clustering.community.size()));
  clustering.num_communities = q.num_communities;
  clustering.final_modularity = q.modularity;
  clustering.final_coverage = q.coverage;
  stats.modularity_after = q.modularity;
  return stats;
}

}  // namespace commdet
