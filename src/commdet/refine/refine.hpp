// Parallel local-move refinement of a community assignment.
//
// The paper names refinement as active future work ("Incorporating
// refinement into our parallel algorithm is an area of active work",
// Sec. II) — this module implements it.  Given the original graph and a
// partition (typically the agglomerative driver's output), rounds of
// Louvain-style vertex moves run in parallel: each vertex inspects its
// neighbors' communities and moves to the one with the best positive
// modularity gain.
//
// Parallel moves use snapshot volumes within a round (the standard
// parallel-Louvain relaxation): two simultaneous moves can interact, so
// gains are recomputed from the ground truth at the end of every round
// and refinement stops as soon as a round fails to improve the actual
// modularity, which keeps the reported result monotone.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "commdet/graph/community_graph.hpp"
#include "commdet/graph/csr.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct RefineOptions {
  int max_rounds = 16;
  double min_gain = 1e-12;  // per-move gain threshold
};

struct RefineStats {
  int rounds = 0;            // rounds that were kept
  std::int64_t moves = 0;    // vertex moves applied (kept rounds only)
  double modularity_before = 0.0;
  double modularity_after = 0.0;
};

namespace detail {

/// Modularity of `labels` over the CSR graph (labels need not be dense).
template <VertexId V>
[[nodiscard]] double csr_modularity(const CsrGraph<V>& g, std::span<const V> labels,
                                    double w_total) {
  const auto nv = static_cast<std::int64_t>(g.num_vertices());
  std::vector<double> internal(static_cast<std::size_t>(nv), 0.0);
  std::vector<double> volume(static_cast<std::size_t>(nv), 0.0);
  parallel_for(nv, [&](std::int64_t v) {
    const auto vi = static_cast<std::size_t>(v);
    const auto c = static_cast<std::size_t>(labels[vi]);
    const double self = static_cast<double>(g.self_weight[vi]);
    std::atomic_ref<double>(internal[c]).fetch_add(self, std::memory_order_relaxed);
    double vol = 2.0 * self;
    const auto nbrs = g.neighbors_of(static_cast<V>(v));
    const auto wts = g.weights_of(static_cast<V>(v));
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      vol += static_cast<double>(wts[k]);
      if (labels[static_cast<std::size_t>(nbrs[k])] == labels[vi])
        std::atomic_ref<double>(internal[c])
            .fetch_add(0.5 * static_cast<double>(wts[k]), std::memory_order_relaxed);
    }
    std::atomic_ref<double>(volume[c]).fetch_add(vol, std::memory_order_relaxed);
  });
  double q = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : q)
  for (std::int64_t c = 0; c < nv; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    const double vol = volume[ci] / (2.0 * w_total);
    q += internal[ci] / w_total - vol * vol;
  }
  return q;
}

}  // namespace detail

/// Refines `labels` in place over the original graph g.  Labels are
/// re-densified on return.  Returns per-round statistics.
template <VertexId V>
RefineStats refine_partition(const CommunityGraph<V>& g, std::vector<V>& labels,
                             const RefineOptions& opts = {}) {
  RefineStats stats;
  if (g.total_weight == 0 || g.nv == 0) return stats;
  const double w_total = static_cast<double>(g.total_weight);
  const CsrGraph<V> csr = to_csr(g);
  const auto nv = static_cast<std::int64_t>(g.nv);

  stats.modularity_before = detail::csr_modularity(csr, std::span<const V>(labels), w_total);
  stats.modularity_after = stats.modularity_before;

  // Per-community volumes (indexed by label value; labels stay < nv).
  std::vector<double> comm_vol(static_cast<std::size_t>(nv), 0.0);
  std::vector<double> vertex_vol(static_cast<std::size_t>(nv), 0.0);
  parallel_for(nv, [&](std::int64_t v) {
    const auto vi = static_cast<std::size_t>(v);
    double vol = 2.0 * static_cast<double>(g.self_weight[vi]);
    for (const Weight w : csr.weights_of(static_cast<V>(v))) vol += static_cast<double>(w);
    vertex_vol[vi] = vol;
    std::atomic_ref<double>(comm_vol[static_cast<std::size_t>(labels[vi])])
        .fetch_add(vol, std::memory_order_relaxed);
  });

  std::vector<V> proposed(static_cast<std::size_t>(nv));
  for (int round = 0; round < opts.max_rounds; ++round) {
    // Propose: best neighbor community per vertex, from snapshot volumes.
    std::int64_t proposals = 0;
    ExceptionCollector errors;
#pragma omp parallel reduction(+ : proposals)
    {
      std::unordered_map<std::int64_t, double> weight_to;
#pragma omp for schedule(dynamic, 256)
      for (std::int64_t v = 0; v < nv; ++v) {
        if (errors.armed()) continue;
        errors.run([&] {
          const auto vi = static_cast<std::size_t>(v);
          const V home = labels[vi];
          proposed[vi] = home;
          const auto nbrs = csr.neighbors_of(static_cast<V>(v));
          const auto wts = csr.weights_of(static_cast<V>(v));
          if (nbrs.empty()) return;
          weight_to.clear();
          weight_to[static_cast<std::int64_t>(home)];
          for (std::size_t k = 0; k < nbrs.size(); ++k)
            weight_to[static_cast<std::int64_t>(labels[static_cast<std::size_t>(nbrs[k])])] +=
                static_cast<double>(wts[k]);

          const double vol_v = vertex_vol[vi];
          const double home_vol =
              comm_vol[static_cast<std::size_t>(home)] - vol_v;  // v removed
          double best_gain =
              weight_to[static_cast<std::int64_t>(home)] / w_total -
              home_vol * vol_v / (2.0 * w_total * w_total);
          V best = home;
          for (const auto& [c, k_vc] : weight_to) {
            if (c == static_cast<std::int64_t>(home)) continue;
            const double gain =
                k_vc / w_total -
                comm_vol[static_cast<std::size_t>(c)] * vol_v / (2.0 * w_total * w_total);
            if (gain > best_gain + opts.min_gain) {
              best_gain = gain;
              best = static_cast<V>(c);
            }
          }
          if (best != home) {
            proposed[vi] = best;
            ++proposals;
          }
        });
      }
    }
    errors.rethrow_if_armed();
    if (proposals == 0) break;

    // Apply the round tentatively, then keep it only if the true
    // modularity improved (simultaneous moves can conflict).
    std::vector<V> backup(labels);
    std::int64_t applied = 0;
#pragma omp parallel for schedule(static) reduction(+ : applied)
    for (std::int64_t v = 0; v < nv; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (proposed[vi] == labels[vi]) continue;
      std::atomic_ref<double>(comm_vol[static_cast<std::size_t>(labels[vi])])
          .fetch_add(-vertex_vol[vi], std::memory_order_relaxed);
      std::atomic_ref<double>(comm_vol[static_cast<std::size_t>(proposed[vi])])
          .fetch_add(vertex_vol[vi], std::memory_order_relaxed);
      labels[vi] = proposed[vi];
      ++applied;
    }
    const double q = detail::csr_modularity(csr, std::span<const V>(labels), w_total);
    if (q <= stats.modularity_after + opts.min_gain) {
      // Revert the round: restore labels and volumes.
      parallel_for(nv, [&](std::int64_t v) {
        const auto vi = static_cast<std::size_t>(v);
        if (labels[vi] == backup[vi]) return;
        std::atomic_ref<double>(comm_vol[static_cast<std::size_t>(labels[vi])])
            .fetch_add(-vertex_vol[vi], std::memory_order_relaxed);
        std::atomic_ref<double>(comm_vol[static_cast<std::size_t>(backup[vi])])
            .fetch_add(vertex_vol[vi], std::memory_order_relaxed);
        labels[vi] = backup[vi];
      });
      break;
    }
    stats.modularity_after = q;
    stats.moves += applied;
    stats.rounds = round + 1;
  }

  // Re-densify labels.
  std::vector<V> dense(static_cast<std::size_t>(nv), kNoVertex<V>);
  V next = 0;
  for (std::int64_t v = 0; v < nv; ++v) {
    auto& d = dense[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])];
    if (d == kNoVertex<V>) d = next++;
  }
  parallel_for(nv, [&](std::int64_t v) {
    const auto vi = static_cast<std::size_t>(v);
    labels[vi] = dense[static_cast<std::size_t>(labels[vi])];
  });
  return stats;
}

}  // namespace commdet
