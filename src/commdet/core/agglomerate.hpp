// The parallel agglomerative community-detection driver (paper Sec. III).
//
// Repeats until a termination criterion fires:
//   1. score every community-graph edge (exit if none is positive),
//   2. greedily compute a heavy maximal matching over those scores,
//   3. contract matched communities into a new community graph.
//
// Each step is one parallel primitive; the driver adds constraint
// filtering (maximum community size), the original-vertex -> community
// map, and per-level telemetry.
//
// The driver is restartable: with AgglomerationOptions::checkpoint set,
// the resumable state is snapshotted at level boundaries (and on budget
// exhaustion or interrupt), and resume_agglomerate() continues a run
// from its newest valid checkpoint with the same trajectory an
// uninterrupted run would have taken.
#pragma once

#include <atomic>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "commdet/contract/bucket_sort_contractor.hpp"
#include "commdet/contract/hash_chain_contractor.hpp"
#include "commdet/contract/spgemm_contractor.hpp"
#include "commdet/core/clustering.hpp"
#include "commdet/core/options.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/graph/community_graph.hpp"
#include "commdet/match/edge_sweep_matcher.hpp"
#include "commdet/match/sequential_greedy_matcher.hpp"
#include "commdet/match/unmatched_list_matcher.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/probes.hpp"
#include "commdet/obs/trace.hpp"
#include "commdet/robust/budget.hpp"
#include "commdet/robust/checkpoint.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/robust/fault_injection.hpp"
#include "commdet/score/score_edges.hpp"
#include "commdet/util/timer.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

namespace detail {

/// Maps a budget/containment Error onto the driver's termination enum.
[[nodiscard]] constexpr TerminationReason termination_for(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kDeadlineExceeded: return TerminationReason::kDeadline;
    case ErrorCode::kMemoryBudget: return TerminationReason::kMemoryBudget;
    case ErrorCode::kStalled: return TerminationReason::kStalled;
    case ErrorCode::kInterrupted: return TerminationReason::kInterrupted;
    default: return TerminationReason::kContainedError;
  }
}

template <VertexId V>
[[nodiscard]] Matching<V> run_matcher(MatcherKind kind, const CommunityGraph<V>& g,
                                      const std::vector<Score>& scores) {
  COMMDET_FAULT_POINT(fault::kMatch, Phase::kMatch);
  switch (kind) {
    case MatcherKind::kEdgeSweep:
      return EdgeSweepMatcher<V>{}.match(g, scores);
    case MatcherKind::kSequentialGreedy:
      return SequentialGreedyMatcher<V>{}.match(g, scores);
    case MatcherKind::kUnmatchedList:
      break;
  }
  return UnmatchedListMatcher<V>{}.match(g, scores);
}

template <VertexId V>
[[nodiscard]] ContractionResult<V> run_contractor(ContractorKind kind,
                                                  const CommunityGraph<V>& g,
                                                  const Matching<V>& m) {
  COMMDET_FAULT_POINT(fault::kContract, Phase::kContract);
  if (kind == ContractorKind::kHashChain) return HashChainContractor<V>{}.contract(g, m);
  if (kind == ContractorKind::kSpGemm) return SpGemmContractor<V>{}.contract(g, m);
  return BucketSortContractor<V>{}.contract(g, m);
}

/// Modularity of the current community graph's partition:
/// sum_c [ self(c)/W - (vol(c)/2W)^2 ].
template <VertexId V>
[[nodiscard]] double partition_modularity(const CommunityGraph<V>& g) {
  if (g.total_weight == 0) return 0.0;
  const auto w = static_cast<double>(g.total_weight);
  return parallel_sum<double>(static_cast<std::int64_t>(g.nv), [&](std::int64_t c) {
    const auto i = static_cast<std::size_t>(c);
    const double vol = static_cast<double>(g.volume[i]) / (2.0 * w);
    return static_cast<double>(g.self_weight[i]) / w - vol * vol;
  });
}

/// Coverage: fraction of total weight collapsed inside communities.
template <VertexId V>
[[nodiscard]] double partition_coverage(const CommunityGraph<V>& g) {
  if (g.total_weight == 0) return 1.0;
  const Weight inside =
      parallel_sum<Weight>(static_cast<std::int64_t>(g.nv), [&](std::int64_t c) {
        return g.self_weight[static_cast<std::size_t>(c)];
      });
  return static_cast<double>(inside) / static_cast<double>(g.total_weight);
}

/// The level loop, shared by fresh and resumed runs.  `resume` seats
/// the loop at a checkpoint's level boundary: `g` is the restored
/// community graph and the maps/history/elapsed time come from the
/// checkpoint (moved out of it).
template <VertexId V, EdgeScorer S>
[[nodiscard]] Clustering<V> agglomerate_impl(CommunityGraph<V> g, const S& scorer,
                                             const AgglomerationOptions& opts,
                                             CheckpointState<V>* resume) {
  WallTimer total_timer;
  obs::ScopedSpan run_span("agglomerate");
  run_span.attr("nv", static_cast<std::int64_t>(g.nv));
  run_span.attr("ne", static_cast<std::int64_t>(g.num_edges()));
  run_span.attr("matcher", to_string(opts.matcher));
  run_span.attr("contractor", to_string(opts.contractor));
  obs::Gauge* rss_gauge = obs::gauge("agglomerate.rss_hwm_bytes");
  Clustering<V> result;
  const std::int64_t original_nv =
      resume != nullptr ? resume->original_nv : static_cast<std::int64_t>(g.nv);
  if (resume != nullptr) {
    result.community = std::move(resume->community);
    result.levels = std::move(resume->levels);
    result.hierarchy = std::move(resume->hierarchy);
  } else {
    result.community.resize(static_cast<std::size_t>(original_nv));
    std::iota(result.community.begin(), result.community.end(), V{0});
  }
  result.num_communities = static_cast<std::int64_t>(g.nv);
  result.final_modularity = detail::partition_modularity(g);
  result.final_coverage = detail::partition_coverage(g);

  // Original-vertex counts per community, for the max-size constraint.
  std::vector<std::int64_t> vertex_count;
  if (opts.max_community_size > 0) {
    if (resume != nullptr && !resume->vertex_count.empty())
      vertex_count = std::move(resume->vertex_count);
    else
      vertex_count.assign(static_cast<std::size_t>(g.nv), 1);
  }

  // Budget tracking: checked at level boundaries and between phases.
  // On exhaustion — or a contained per-level failure — the loop stops
  // and `result` keeps the best clustering completed so far, tagged
  // with the degradation reason (graceful degradation, never a crash).
  // A resumed run seats the tracker at the checkpoint's accumulated
  // elapsed time, so budgets cover the whole logical run.
  const double base_elapsed = resume != nullptr ? resume->elapsed_seconds : 0.0;
  BudgetTracker budget(opts.budget, base_elapsed);
  const bool budgeted = opts.budget.limited();
  int completed_levels = static_cast<int>(result.levels.size());
  const int start_level = resume != nullptr ? resume->next_level : 1;
  int last_completed_level = start_level - 1;
  const auto degrade = [&](Error e) {
    result.reason = detail::termination_for(e.code);
    result.error = std::move(e);
  };

  // Checkpoint machinery.  Snapshot writes are contained: a failing
  // checkpoint is counted and the (healthy) run keeps going.
  const bool ckpt_enabled = opts.checkpoint.enabled();
  const std::uint64_t fingerprint =
      ckpt_enabled || resume != nullptr ? options_fingerprint(opts) : 0;
  if (ckpt_enabled || resume != nullptr) {
    CheckpointProvenance prov;
    prov.directory = opts.checkpoint.directory;
    if (resume != nullptr) {
      prov.resumed_from = resume->source_path;
      prov.resumed_generation = resume->source_generation;
      prov.resumed_level = start_level;
      prov.resumed_elapsed_seconds = base_elapsed;
    }
    result.checkpoint = std::move(prov);
    run_span.attr("resumed", resume != nullptr ? 1 : 0);
  }
  obs::Counter* ckpt_write_counter = ckpt_enabled ? obs::counter("checkpoint.writes") : nullptr;
  obs::Counter* ckpt_bytes_counter = ckpt_enabled ? obs::counter("checkpoint.bytes") : nullptr;
  const auto save_checkpoint_now = [&](int next_level) -> bool {
    if (!ckpt_enabled) return false;
    obs::ScopedSpan span("checkpoint");
    span.attr("next_level", next_level);
    try {
      CheckpointView<V> view;
      view.config_fingerprint = fingerprint;
      view.original_nv = original_nv;
      view.next_level = next_level;
      view.elapsed_seconds = base_elapsed + total_timer.seconds();
      view.graph = &g;
      view.community = &result.community;
      view.vertex_count = vertex_count.empty() ? nullptr : &vertex_count;
      view.levels = &result.levels;
      view.hierarchy = opts.track_hierarchy ? &result.hierarchy : nullptr;
      const std::int64_t generation =
          save_checkpoint(opts.checkpoint.directory, view, opts.checkpoint.keep_generations);
      result.checkpoint->last_generation = generation;
      ++result.checkpoint->checkpoints_written;
      if (ckpt_write_counter != nullptr) ckpt_write_counter->add(1);
      span.attr("generation", generation);
      return true;
    } catch (const std::exception& e) {
      // A failing snapshot must not take down a healthy run: record it
      // and continue without checkpoint coverage for this boundary.
      ++result.checkpoint->checkpoint_failures;
      span.set_error();
      span.attr("error", e.what());
      if (obs::Counter* f = obs::counter("checkpoint.failures")) f->add(1);
      return false;
    }
  };
  (void)ckpt_bytes_counter;

  // Stop checks shared by the level boundary and the between-phase
  // points: cooperative interrupt first (a signal handler set the
  // flag), then the budget.
  const auto check_stop = [&](bool check_memory) -> std::optional<Error> {
    if (interrupt_requested())
      return Error{ErrorCode::kInterrupted, Phase::kDriver,
                   "interrupt requested (SIGINT/SIGTERM)"};
    if (!budgeted) return std::nullopt;
    if (auto violation = budget.check_deadline(completed_levels)) return violation;
    if (check_memory)
      if (auto violation = budget.check_memory(estimate_working_set_bytes(g), completed_levels))
        return violation;
    return std::nullopt;
  };

  std::vector<Score> scores;
  for (int level = start_level;; ++level) {
    if (opts.max_levels > 0 && level > opts.max_levels) {
      result.reason = TerminationReason::kLevelCap;
      break;
    }
    if (auto violation = check_stop(/*check_memory=*/true)) {
      degrade(std::move(*violation));
      break;
    }

    LevelStats stats;
    stats.level = level;
    stats.nv_before = static_cast<std::int64_t>(g.nv);
    stats.ne_before = g.num_edges();

    obs::ScopedSpan level_span("level");
    level_span.attr("level", level);
    level_span.attr("nv_before", stats.nv_before);
    level_span.attr("ne_before", static_cast<std::int64_t>(stats.ne_before));

    // The three phases run under containment: an exception raised inside
    // any of them (already rethrown on this thread by the parallel
    // wrappers) abandons the level, leaving `g` and the vertex maps in
    // their last consistent state — score and match do not mutate them,
    // and a contraction failure throws before `g` is replaced.
    Phase phase = Phase::kScore;
    bool contained = false;
    try {
      // Step 1: score.
      ScoreSummary summary;
      {
        ScopedTimer t(stats.score_seconds);
        obs::ScopedSpan span("score");
        summary = score_edges(g, scorer, scores);
        span.attr("positive_edges", static_cast<std::int64_t>(summary.positive_edges));
        span.attr("max_score", summary.max_score);
        if (opts.max_community_size > 0) {
          // Disqualify merges that would exceed the size cap by zeroing
          // their scores before matching.
          parallel_for(g.num_edges(), [&](std::int64_t e) {
            const auto i = static_cast<std::size_t>(e);
            if (scores[i] <= 0.0) return;
            const auto merged =
                vertex_count[static_cast<std::size_t>(g.efirst[i])] +
                vertex_count[static_cast<std::size_t>(g.esecond[i])];
            if (merged > opts.max_community_size) scores[i] = 0.0;
          });
        }
      }
      stats.positive_edges = summary.positive_edges;
      stats.max_score = summary.max_score;
      if (summary.positive_edges == 0) {
        result.reason = TerminationReason::kLocalMaximum;
        break;
      }
      if (auto violation = check_stop(/*check_memory=*/false)) {
        degrade(std::move(*violation));
        break;
      }

      // Step 2: match.
      phase = Phase::kMatch;
      Matching<V> matching;
      {
        ScopedTimer t(stats.match_seconds);
        obs::ScopedSpan span("match");
        matching = detail::run_matcher(opts.matcher, g, scores);
        span.attr("pairs_matched", matching.num_pairs);
        span.attr("sweeps", matching.sweeps);
      }
      stats.pairs_matched = matching.num_pairs;
      stats.match_sweeps = matching.sweeps;
      if (matching.num_pairs == 0) {
        result.reason = TerminationReason::kNoMatches;
        break;
      }
      if (auto violation = check_stop(/*check_memory=*/false)) {
        degrade(std::move(*violation));
        break;
      }

      // Step 3: contract.
      phase = Phase::kContract;
      std::vector<V> new_label;
      {
        ScopedTimer t(stats.contract_seconds);
        obs::ScopedSpan span("contract");
        auto contracted = detail::run_contractor(opts.contractor, g, matching);
        g = std::move(contracted.graph);
        new_label = std::move(contracted.new_label);
        span.attr("nv_after", static_cast<std::int64_t>(g.nv));
        span.attr("ne_after", static_cast<std::int64_t>(g.num_edges()));
      }

      // Bookkeeping: original-vertex map, size counts, quality trajectory.
      phase = Phase::kDriver;
      parallel_for(original_nv, [&](std::int64_t v) {
        auto& c = result.community[static_cast<std::size_t>(v)];
        c = new_label[static_cast<std::size_t>(c)];
      });
      if (opts.track_hierarchy) result.hierarchy.push_back(new_label);
      if (opts.max_community_size > 0) {
        std::vector<std::int64_t> new_count(static_cast<std::size_t>(g.nv), 0);
        parallel_for(static_cast<std::int64_t>(new_label.size()), [&](std::int64_t v) {
          std::atomic_ref<std::int64_t>(
              new_count[static_cast<std::size_t>(new_label[static_cast<std::size_t>(v)])])
              .fetch_add(vertex_count[static_cast<std::size_t>(v)],
                         std::memory_order_relaxed);
        });
        vertex_count = std::move(new_count);
      }

      stats.nv_after = static_cast<std::int64_t>(g.nv);
      stats.ne_after = g.num_edges();
      stats.coverage = detail::partition_coverage(g);
      stats.modularity = detail::partition_modularity(g);

      // Level-boundary resource probe: RSS high-water into the level
      // span and the run gauge.  The /proc read only happens when a
      // sink is installed.
      if (level_span.active() || rss_gauge != nullptr) {
        const std::int64_t rss = obs::rss_high_water_bytes();
        if (rss_gauge != nullptr) rss_gauge->record(rss);
        level_span.attr("rss_hwm_bytes", rss);
      }
      level_span.attr("nv_after", stats.nv_after);
      level_span.attr("coverage", stats.coverage);
      level_span.attr("modularity", stats.modularity);
    } catch (const std::exception& e) {
      degrade(error_from_exception(e, phase));
      contained = true;
    } catch (...) {
      degrade(Error{ErrorCode::kInternal, phase, "non-standard exception"});
      contained = true;
    }
    if (contained) {
      // Preserve the interrupted level's partial telemetry: ScopedTimer
      // accumulated the failing phase's time during unwinding, and the
      // phases that did finish left their counts in `stats`.
      result.failed_level = stats;
      level_span.set_error();
      break;
    }

    result.levels.push_back(stats);
    ++completed_levels;
    last_completed_level = level;
    result.num_communities = static_cast<std::int64_t>(g.nv);
    result.final_coverage = stats.coverage;
    result.final_modularity = stats.modularity;

    if (stats.coverage >= opts.min_coverage) {
      result.reason = TerminationReason::kCoverage;
      break;
    }
    if (result.num_communities <= opts.min_communities) {
      result.reason = TerminationReason::kMinCommunities;
      break;
    }
    if (budgeted) {
      if (auto violation = budget.note_level(stats.nv_before, stats.nv_after)) {
        degrade(std::move(*violation));
        break;
      }
    }

    // Level boundary reached with the run still going: checkpoint on
    // the configured cadence.
    if (ckpt_enabled && opts.checkpoint.every_levels > 0 &&
        completed_levels % opts.checkpoint.every_levels == 0)
      (void)save_checkpoint_now(level + 1);
  }

  // A degraded stop hands its state to the next invocation: one final
  // checkpoint at the last completed level boundary.  Budget and
  // interrupt stops become kCheckpointed (the run is explicitly
  // resumable); a contained error keeps its diagnostic reason but is
  // checkpointed all the same.
  if (ckpt_enabled && opts.checkpoint.on_exhaustion && is_degraded(result.reason)) {
    const bool saved = save_checkpoint_now(last_completed_level + 1);
    if (saved && result.reason != TerminationReason::kContainedError)
      result.reason = TerminationReason::kCheckpointed;
  }

  result.total_seconds = base_elapsed + total_timer.seconds();
  run_span.attr("levels", static_cast<std::int64_t>(result.levels.size()));
  run_span.attr("termination", to_string(result.reason));
  if (run_span.active()) run_span.attr("rss_hwm_bytes", obs::rss_high_water_bytes());
  return result;
}

}  // namespace detail

/// Runs agglomerative community detection on a community graph (consumed).
template <VertexId V, EdgeScorer S>
[[nodiscard]] Clustering<V> agglomerate(CommunityGraph<V> g, const S& scorer,
                                        const AgglomerationOptions& opts = {}) {
  return detail::agglomerate_impl(std::move(g), scorer, opts,
                                  static_cast<CheckpointState<V>*>(nullptr));
}

/// Convenience overload: builds the community graph from a raw edge list.
template <VertexId V, EdgeScorer S>
[[nodiscard]] Clustering<V> agglomerate(const EdgeList<V>& edges, const S& scorer,
                                        const AgglomerationOptions& opts = {}) {
  return agglomerate(build_community_graph(edges), scorer, opts);
}

/// Continues an interrupted run from a checkpoint (consumed).  The
/// options must describe the same trajectory the checkpoint was written
/// under — matcher, contractor, constraints, and the caller's
/// config_salt are folded into a fingerprint and a mismatch is refused
/// with ErrorCode::kCheckpointMismatch.  Budget and checkpoint-cadence
/// fields may differ (a resume typically raises the deadline).
template <VertexId V, EdgeScorer S>
[[nodiscard]] Clustering<V> resume_agglomerate(CheckpointState<V> ckpt, const S& scorer,
                                               const AgglomerationOptions& opts = {}) {
  const std::uint64_t fingerprint = options_fingerprint(opts);
  if (fingerprint != ckpt.config_fingerprint)
    throw_error(ErrorCode::kCheckpointMismatch, Phase::kDriver,
                "checkpoint was written under a different configuration "
                "(matcher/contractor/constraints/scorer); refusing to resume" +
                    (ckpt.source_path.empty() ? std::string()
                                              : " from " + ckpt.source_path));
  CommunityGraph<V> g = std::move(ckpt.graph);
  return detail::agglomerate_impl(std::move(g), scorer, opts, &ckpt);
}

}  // namespace commdet
