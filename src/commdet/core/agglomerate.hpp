// The parallel agglomerative community-detection driver (paper Sec. III).
//
// Repeats until a termination criterion fires:
//   1. score every community-graph edge (exit if none is positive),
//   2. greedily compute a heavy maximal matching over those scores,
//   3. contract matched communities into a new community graph.
//
// Each step is one parallel primitive; the driver adds constraint
// filtering (maximum community size), the original-vertex -> community
// map, and per-level telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "commdet/contract/bucket_sort_contractor.hpp"
#include "commdet/contract/hash_chain_contractor.hpp"
#include "commdet/contract/spgemm_contractor.hpp"
#include "commdet/core/clustering.hpp"
#include "commdet/core/options.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/graph/community_graph.hpp"
#include "commdet/match/edge_sweep_matcher.hpp"
#include "commdet/match/sequential_greedy_matcher.hpp"
#include "commdet/match/unmatched_list_matcher.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/probes.hpp"
#include "commdet/obs/trace.hpp"
#include "commdet/robust/budget.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/robust/fault_injection.hpp"
#include "commdet/score/score_edges.hpp"
#include "commdet/util/timer.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

namespace detail {

/// Maps a budget/containment Error onto the driver's termination enum.
[[nodiscard]] constexpr TerminationReason termination_for(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kDeadlineExceeded: return TerminationReason::kDeadline;
    case ErrorCode::kMemoryBudget: return TerminationReason::kMemoryBudget;
    case ErrorCode::kStalled: return TerminationReason::kStalled;
    default: return TerminationReason::kContainedError;
  }
}

template <VertexId V>
[[nodiscard]] Matching<V> run_matcher(MatcherKind kind, const CommunityGraph<V>& g,
                                      const std::vector<Score>& scores) {
  COMMDET_FAULT_POINT(fault::kMatch, Phase::kMatch);
  switch (kind) {
    case MatcherKind::kEdgeSweep:
      return EdgeSweepMatcher<V>{}.match(g, scores);
    case MatcherKind::kSequentialGreedy:
      return SequentialGreedyMatcher<V>{}.match(g, scores);
    case MatcherKind::kUnmatchedList:
      break;
  }
  return UnmatchedListMatcher<V>{}.match(g, scores);
}

template <VertexId V>
[[nodiscard]] ContractionResult<V> run_contractor(ContractorKind kind,
                                                  const CommunityGraph<V>& g,
                                                  const Matching<V>& m) {
  COMMDET_FAULT_POINT(fault::kContract, Phase::kContract);
  if (kind == ContractorKind::kHashChain) return HashChainContractor<V>{}.contract(g, m);
  if (kind == ContractorKind::kSpGemm) return SpGemmContractor<V>{}.contract(g, m);
  return BucketSortContractor<V>{}.contract(g, m);
}

/// Modularity of the current community graph's partition:
/// sum_c [ self(c)/W - (vol(c)/2W)^2 ].
template <VertexId V>
[[nodiscard]] double partition_modularity(const CommunityGraph<V>& g) {
  if (g.total_weight == 0) return 0.0;
  const auto w = static_cast<double>(g.total_weight);
  return parallel_sum<double>(static_cast<std::int64_t>(g.nv), [&](std::int64_t c) {
    const auto i = static_cast<std::size_t>(c);
    const double vol = static_cast<double>(g.volume[i]) / (2.0 * w);
    return static_cast<double>(g.self_weight[i]) / w - vol * vol;
  });
}

/// Coverage: fraction of total weight collapsed inside communities.
template <VertexId V>
[[nodiscard]] double partition_coverage(const CommunityGraph<V>& g) {
  if (g.total_weight == 0) return 1.0;
  const Weight inside =
      parallel_sum<Weight>(static_cast<std::int64_t>(g.nv), [&](std::int64_t c) {
        return g.self_weight[static_cast<std::size_t>(c)];
      });
  return static_cast<double>(inside) / static_cast<double>(g.total_weight);
}

}  // namespace detail

/// Runs agglomerative community detection on a community graph (consumed).
template <VertexId V, EdgeScorer S>
[[nodiscard]] Clustering<V> agglomerate(CommunityGraph<V> g, const S& scorer,
                                        const AgglomerationOptions& opts = {}) {
  WallTimer total_timer;
  obs::ScopedSpan run_span("agglomerate");
  run_span.attr("nv", static_cast<std::int64_t>(g.nv));
  run_span.attr("ne", static_cast<std::int64_t>(g.num_edges()));
  run_span.attr("matcher", to_string(opts.matcher));
  run_span.attr("contractor", to_string(opts.contractor));
  obs::Gauge* rss_gauge = obs::gauge("agglomerate.rss_hwm_bytes");
  Clustering<V> result;
  const auto original_nv = static_cast<std::int64_t>(g.nv);
  result.community.resize(static_cast<std::size_t>(original_nv));
  std::iota(result.community.begin(), result.community.end(), V{0});
  result.num_communities = original_nv;
  result.final_modularity = detail::partition_modularity(g);
  result.final_coverage = detail::partition_coverage(g);

  // Original-vertex counts per community, for the max-size constraint.
  std::vector<std::int64_t> vertex_count;
  if (opts.max_community_size > 0)
    vertex_count.assign(static_cast<std::size_t>(g.nv), 1);

  // Budget tracking: checked at level boundaries and between phases.
  // On exhaustion — or a contained per-level failure — the loop stops
  // and `result` keeps the best clustering completed so far, tagged
  // with the degradation reason (graceful degradation, never a crash).
  BudgetTracker budget(opts.budget);
  const bool budgeted = opts.budget.limited();
  int completed_levels = 0;
  const auto degrade = [&](Error e) {
    result.reason = detail::termination_for(e.code);
    result.error = std::move(e);
  };

  std::vector<Score> scores;
  for (int level = 1;; ++level) {
    if (opts.max_levels > 0 && level > opts.max_levels) {
      result.reason = TerminationReason::kLevelCap;
      break;
    }
    if (budgeted) {
      if (auto violation = budget.check_deadline(completed_levels)) {
        degrade(std::move(*violation));
        break;
      }
      if (auto violation = budget.check_memory(estimate_working_set_bytes(g), completed_levels)) {
        degrade(std::move(*violation));
        break;
      }
    }

    LevelStats stats;
    stats.level = level;
    stats.nv_before = static_cast<std::int64_t>(g.nv);
    stats.ne_before = g.num_edges();

    obs::ScopedSpan level_span("level");
    level_span.attr("level", level);
    level_span.attr("nv_before", stats.nv_before);
    level_span.attr("ne_before", static_cast<std::int64_t>(stats.ne_before));

    // The three phases run under containment: an exception raised inside
    // any of them (already rethrown on this thread by the parallel
    // wrappers) abandons the level, leaving `g` and the vertex maps in
    // their last consistent state — score and match do not mutate them,
    // and a contraction failure throws before `g` is replaced.
    Phase phase = Phase::kScore;
    bool contained = false;
    try {
      // Step 1: score.
      ScoreSummary summary;
      {
        ScopedTimer t(stats.score_seconds);
        obs::ScopedSpan span("score");
        summary = score_edges(g, scorer, scores);
        span.attr("positive_edges", static_cast<std::int64_t>(summary.positive_edges));
        span.attr("max_score", summary.max_score);
        if (opts.max_community_size > 0) {
          // Disqualify merges that would exceed the size cap by zeroing
          // their scores before matching.
          parallel_for(g.num_edges(), [&](std::int64_t e) {
            const auto i = static_cast<std::size_t>(e);
            if (scores[i] <= 0.0) return;
            const auto merged =
                vertex_count[static_cast<std::size_t>(g.efirst[i])] +
                vertex_count[static_cast<std::size_t>(g.esecond[i])];
            if (merged > opts.max_community_size) scores[i] = 0.0;
          });
        }
      }
      stats.positive_edges = summary.positive_edges;
      stats.max_score = summary.max_score;
      if (summary.positive_edges == 0) {
        result.reason = TerminationReason::kLocalMaximum;
        break;
      }
      if (budgeted) {
        if (auto violation = budget.check_deadline(completed_levels)) {
          degrade(std::move(*violation));
          break;
        }
      }

      // Step 2: match.
      phase = Phase::kMatch;
      Matching<V> matching;
      {
        ScopedTimer t(stats.match_seconds);
        obs::ScopedSpan span("match");
        matching = detail::run_matcher(opts.matcher, g, scores);
        span.attr("pairs_matched", matching.num_pairs);
        span.attr("sweeps", matching.sweeps);
      }
      stats.pairs_matched = matching.num_pairs;
      stats.match_sweeps = matching.sweeps;
      if (matching.num_pairs == 0) {
        result.reason = TerminationReason::kNoMatches;
        break;
      }
      if (budgeted) {
        if (auto violation = budget.check_deadline(completed_levels)) {
          degrade(std::move(*violation));
          break;
        }
      }

      // Step 3: contract.
      phase = Phase::kContract;
      std::vector<V> new_label;
      {
        ScopedTimer t(stats.contract_seconds);
        obs::ScopedSpan span("contract");
        auto contracted = detail::run_contractor(opts.contractor, g, matching);
        g = std::move(contracted.graph);
        new_label = std::move(contracted.new_label);
        span.attr("nv_after", static_cast<std::int64_t>(g.nv));
        span.attr("ne_after", static_cast<std::int64_t>(g.num_edges()));
      }

      // Bookkeeping: original-vertex map, size counts, quality trajectory.
      phase = Phase::kDriver;
      parallel_for(original_nv, [&](std::int64_t v) {
        auto& c = result.community[static_cast<std::size_t>(v)];
        c = new_label[static_cast<std::size_t>(c)];
      });
      if (opts.track_hierarchy) result.hierarchy.push_back(new_label);
      if (opts.max_community_size > 0) {
        std::vector<std::int64_t> new_count(static_cast<std::size_t>(g.nv), 0);
        parallel_for(static_cast<std::int64_t>(new_label.size()), [&](std::int64_t v) {
          std::atomic_ref<std::int64_t>(
              new_count[static_cast<std::size_t>(new_label[static_cast<std::size_t>(v)])])
              .fetch_add(vertex_count[static_cast<std::size_t>(v)],
                         std::memory_order_relaxed);
        });
        vertex_count = std::move(new_count);
      }

      stats.nv_after = static_cast<std::int64_t>(g.nv);
      stats.ne_after = g.num_edges();
      stats.coverage = detail::partition_coverage(g);
      stats.modularity = detail::partition_modularity(g);

      // Level-boundary resource probe: RSS high-water into the level
      // span and the run gauge.  The /proc read only happens when a
      // sink is installed.
      if (level_span.active() || rss_gauge != nullptr) {
        const std::int64_t rss = obs::rss_high_water_bytes();
        if (rss_gauge != nullptr) rss_gauge->record(rss);
        level_span.attr("rss_hwm_bytes", rss);
      }
      level_span.attr("nv_after", stats.nv_after);
      level_span.attr("coverage", stats.coverage);
      level_span.attr("modularity", stats.modularity);
    } catch (const std::exception& e) {
      degrade(error_from_exception(e, phase));
      contained = true;
    } catch (...) {
      degrade(Error{ErrorCode::kInternal, phase, "non-standard exception"});
      contained = true;
    }
    if (contained) {
      // Preserve the interrupted level's partial telemetry: ScopedTimer
      // accumulated the failing phase's time during unwinding, and the
      // phases that did finish left their counts in `stats`.
      result.failed_level = stats;
      level_span.set_error();
      break;
    }

    result.levels.push_back(stats);
    ++completed_levels;
    result.num_communities = static_cast<std::int64_t>(g.nv);
    result.final_coverage = stats.coverage;
    result.final_modularity = stats.modularity;

    if (stats.coverage >= opts.min_coverage) {
      result.reason = TerminationReason::kCoverage;
      break;
    }
    if (result.num_communities <= opts.min_communities) {
      result.reason = TerminationReason::kMinCommunities;
      break;
    }
    if (budgeted) {
      if (auto violation = budget.note_level(stats.nv_before, stats.nv_after)) {
        degrade(std::move(*violation));
        break;
      }
    }
  }

  result.total_seconds = total_timer.seconds();
  run_span.attr("levels", static_cast<std::int64_t>(result.levels.size()));
  run_span.attr("termination", to_string(result.reason));
  if (run_span.active()) run_span.attr("rss_hwm_bytes", obs::rss_high_water_bytes());
  return result;
}

/// Convenience overload: builds the community graph from a raw edge list.
template <VertexId V, EdgeScorer S>
[[nodiscard]] Clustering<V> agglomerate(const EdgeList<V>& edges, const S& scorer,
                                        const AgglomerationOptions& opts = {}) {
  return agglomerate(build_community_graph(edges), scorer, opts);
}

}  // namespace commdet
