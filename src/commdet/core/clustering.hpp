// Result types of the agglomerative driver: the final community
// assignment plus per-level telemetry (phase timings, sizes, quality
// trajectory).  The phase breakdown backs the paper's contraction-cost
// claim ("requires from 40% to 80% of the execution time", Sec. IV-C).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "commdet/core/options.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/prefix_sum.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

/// Remaps non-negative labels onto the dense range [0, k), preserving
/// the relative order of surviving label values, and returns k.  The
/// remap is stable: applying it to an already-dense labeling is the
/// identity, so repeated incremental rounds (which unseat a few
/// vertices into fresh high labels and then re-compact) cannot grow or
/// churn the label space beyond the communities that actually changed.
template <VertexId V>
std::int64_t compact_labels(std::vector<V>& labels) {
  const auto n = static_cast<std::int64_t>(labels.size());
  if (n == 0) return 0;
  const V max_label = parallel_max(n, V{-1}, [&](std::int64_t i) {
    const V l = labels[static_cast<std::size_t>(i)];
    assert(l >= 0 && "compact_labels requires non-negative labels");
    return l;
  });
  std::vector<V> newid(static_cast<std::size_t>(max_label) + 1, 0);
  parallel_for(n, [&](std::int64_t i) {
    // Benign same-value race: every writer stores 1.
    newid[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)])] = 1;
  });
  const V k = exclusive_prefix_sum(std::span<V>(newid));
  parallel_for(n, [&](std::int64_t i) {
    auto& l = labels[static_cast<std::size_t>(i)];
    l = newid[static_cast<std::size_t>(l)];
  });
  return static_cast<std::int64_t>(k);
}

/// Telemetry for one score/match/contract iteration.
struct LevelStats {
  int level = 0;
  std::int64_t nv_before = 0;
  EdgeId ne_before = 0;
  EdgeId positive_edges = 0;
  Score max_score = 0.0;
  std::int64_t pairs_matched = 0;
  int match_sweeps = 0;
  std::int64_t nv_after = 0;
  EdgeId ne_after = 0;
  double coverage = 0.0;    // after contraction
  double modularity = 0.0;  // after contraction
  double score_seconds = 0.0;
  double match_seconds = 0.0;
  double contract_seconds = 0.0;
};

/// Which backend produced a Clustering, surfaced additively in the run
/// report's "result.algorithm" object so downstream consumers can tell
/// a cheap label-propagation refresh from a full agglomeration without
/// branching on schema shape.  `iterations` counts the backend's
/// natural unit (agglomeration/Louvain levels, CDLP sweeps).
struct AlgorithmProvenance {
  std::string name = "agglomerative";
  int iterations = 0;
  bool converged = true;
  std::string refine;  // "", "flat", "vcycle", "local-move"
};

/// Checkpoint/resume provenance of one driver invocation, surfaced in
/// the run report so supervisors can tell a fresh run from a resumed
/// one and find the newest generation to resume from.
struct CheckpointProvenance {
  std::string directory;              // CheckpointOptions::directory
  std::int64_t last_generation = -1;  // newest generation this run wrote
  int checkpoints_written = 0;        // successful snapshot commits
  int checkpoint_failures = 0;        // contained write failures (run kept going)
  std::string resumed_from;           // loaded generation's path; "" = fresh run
  std::int64_t resumed_generation = -1;
  int resumed_level = 0;              // first level executed by this invocation
  double resumed_elapsed_seconds = 0.0;  // work time inherited from prior runs
};

template <VertexId V>
struct Clustering {
  /// Community of each original vertex; labels dense in
  /// [0, num_communities).
  std::vector<V> community;
  std::int64_t num_communities = 0;
  TerminationReason reason = TerminationReason::kLocalMaximum;

  /// Set when the run degraded (reason kContainedError or a budget
  /// reason): the structured record of what stopped it.  The clustering
  /// itself is still the valid best-so-far result.
  std::optional<Error> error;

  /// Present when checkpointing was enabled or the run was resumed.
  std::optional<CheckpointProvenance> checkpoint;

  /// Which backend produced this result (DetectPlan dispatch and the
  /// backends themselves fill it; absent from results built by hand).
  std::optional<AlgorithmProvenance> algorithm;

  /// Partial stats of the level a contained failure interrupted: phase
  /// times accumulated up to the throw (ScopedTimer adds on unwinding),
  /// sizes and counts of the phases that finished.  The level itself is
  /// not in `levels` — it never completed.
  std::optional<LevelStats> failed_level;

  double final_coverage = 0.0;
  double final_modularity = 0.0;
  double total_seconds = 0.0;
  std::vector<LevelStats> levels;

  /// When AgglomerationOptions::track_hierarchy is set: hierarchy[k] maps
  /// level-k community ids to level-(k+1) ids (level 0 = original
  /// vertices), i.e. the contraction dendrogram.  Use labels_at_level()
  /// to cut it.
  std::vector<std::vector<V>> hierarchy;

  [[nodiscard]] int num_levels() const noexcept { return static_cast<int>(levels.size()); }

  /// Re-densifies `community` in place (order-preserving, stable — see
  /// the free compact_labels) and refreshes num_communities.
  void compact_labels() { num_communities = ::commdet::compact_labels(community); }

  /// Community of every original vertex after `level` contractions
  /// (level 0 = all singletons).  Requires track_hierarchy.
  [[nodiscard]] std::vector<V> labels_at_level(int level) const {
    const auto nv = static_cast<std::int64_t>(community.size());
    std::vector<V> labels(static_cast<std::size_t>(nv));
    for (std::int64_t v = 0; v < nv; ++v) labels[static_cast<std::size_t>(v)] = static_cast<V>(v);
    const int depth = std::min<int>(level, static_cast<int>(hierarchy.size()));
    for (int k = 0; k < depth; ++k)
      for (std::int64_t v = 0; v < nv; ++v) {
        auto& c = labels[static_cast<std::size_t>(v)];
        c = hierarchy[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)];
      }
    return labels;
  }

  /// Fraction of total time spent contracting (the paper's 40–80% claim).
  [[nodiscard]] double contraction_fraction() const noexcept {
    double contract = 0.0;
    double all = 0.0;
    for (const auto& l : levels) {
      contract += l.contract_seconds;
      all += l.score_seconds + l.match_seconds + l.contract_seconds;
    }
    return all > 0.0 ? contract / all : 0.0;
  }
};

}  // namespace commdet
