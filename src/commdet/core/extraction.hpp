// Community-subgraph extraction and per-community profiling.
//
// The paper's motivating use case (Sec. I): communities "can be analyzed
// more thoroughly or form the basis for multi-level algorithms",
// "opening smaller portions of the data to current analysis tools".
// These helpers hand each detected community to such tools: induced
// subgraphs with vertex mappings, and per-community structural profiles.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "commdet/graph/community_graph.hpp"
#include "commdet/graph/edge_list.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/prefix_sum.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

/// The induced subgraph of one community, with the mapping back to
/// original vertex ids.
template <VertexId V>
struct CommunitySubgraph {
  EdgeList<V> graph;               // local ids [0, size)
  std::vector<V> original_vertex;  // local id -> original id
};

/// Extracts the induced subgraph of community `c` (self-loops included).
template <VertexId V>
[[nodiscard]] CommunitySubgraph<V> extract_community(const CommunityGraph<V>& g,
                                                     std::span<const V> labels, V c) {
  const auto nv = static_cast<std::int64_t>(g.nv);
  CommunitySubgraph<V> out;

  // Dense local ids for members, original order preserved.
  std::vector<V> local(static_cast<std::size_t>(nv), kNoVertex<V>);
  for (std::int64_t v = 0; v < nv; ++v) {
    if (labels[static_cast<std::size_t>(v)] == c) {
      local[static_cast<std::size_t>(v)] = static_cast<V>(out.original_vertex.size());
      out.original_vertex.push_back(static_cast<V>(v));
    }
  }
  out.graph.num_vertices = static_cast<V>(out.original_vertex.size());

  for (const V v : out.original_vertex) {
    const Weight self = g.self_weight[static_cast<std::size_t>(v)];
    if (self > 0)
      out.graph.add(local[static_cast<std::size_t>(v)], local[static_cast<std::size_t>(v)], self);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto i = static_cast<std::size_t>(e);
    const V a = g.efirst[i];
    const V b = g.esecond[i];
    if (labels[static_cast<std::size_t>(a)] == c && labels[static_cast<std::size_t>(b)] == c)
      out.graph.add(local[static_cast<std::size_t>(a)], local[static_cast<std::size_t>(b)],
                    g.eweight[i]);
  }
  return out;
}

/// Structural profile of one community.
struct CommunityProfile {
  std::int64_t size = 0;          // member vertices
  Weight internal_weight = 0;     // edges + self-loops inside
  Weight cut_weight = 0;          // edges leaving
  Weight volume = 0;              // 2*internal + cut
  double conductance = 0.0;       // cut / min(vol, 2W - vol)
};

/// Profiles every community of a dense labeling in two parallel passes.
template <VertexId V>
[[nodiscard]] std::vector<CommunityProfile> community_profiles(const CommunityGraph<V>& g,
                                                               std::span<const V> labels) {
  std::int64_t num_comms = 0;
  for (const V l : labels) num_comms = std::max<std::int64_t>(num_comms, l + 1);
  std::vector<CommunityProfile> out(static_cast<std::size_t>(num_comms));

  parallel_for(static_cast<std::int64_t>(g.nv), [&](std::int64_t v) {
    const auto vi = static_cast<std::size_t>(v);
    auto& p = out[static_cast<std::size_t>(labels[vi])];
    std::atomic_ref<std::int64_t>(p.size).fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<Weight>(p.internal_weight)
        .fetch_add(g.self_weight[vi], std::memory_order_relaxed);
  });
  parallel_for(g.num_edges(), [&](std::int64_t e) {
    const auto i = static_cast<std::size_t>(e);
    const V ca = labels[static_cast<std::size_t>(g.efirst[i])];
    const V cb = labels[static_cast<std::size_t>(g.esecond[i])];
    const Weight w = g.eweight[i];
    if (ca == cb) {
      std::atomic_ref<Weight>(out[static_cast<std::size_t>(ca)].internal_weight)
          .fetch_add(w, std::memory_order_relaxed);
    } else {
      std::atomic_ref<Weight>(out[static_cast<std::size_t>(ca)].cut_weight)
          .fetch_add(w, std::memory_order_relaxed);
      std::atomic_ref<Weight>(out[static_cast<std::size_t>(cb)].cut_weight)
          .fetch_add(w, std::memory_order_relaxed);
    }
  });
  const double two_w = 2.0 * static_cast<double>(g.total_weight);
  for (auto& p : out) {
    p.volume = 2 * p.internal_weight + p.cut_weight;
    const double denom = std::min(static_cast<double>(p.volume),
                                  two_w - static_cast<double>(p.volume));
    p.conductance =
        (p.cut_weight == 0 || denom <= 0.0) ? 0.0 : static_cast<double>(p.cut_weight) / denom;
  }
  return out;
}

/// Aggregates a graph by an arbitrary dense labeling: each community
/// becomes one vertex (the generalization of matching-based contraction
/// to many-way merges, the basis of multi-level flows).
template <VertexId V>
[[nodiscard]] CommunityGraph<V> aggregate_by_labels(const CommunityGraph<V>& g,
                                                    std::span<const V> labels);

}  // namespace commdet

#include "commdet/graph/builder.hpp"

namespace commdet {

template <VertexId V>
[[nodiscard]] CommunityGraph<V> aggregate_by_labels(const CommunityGraph<V>& g,
                                                    std::span<const V> labels) {
  std::int64_t num_comms = 0;
  for (const V l : labels) num_comms = std::max<std::int64_t>(num_comms, l + 1);

  EdgeList<V> coarse;
  coarse.num_vertices = static_cast<V>(num_comms);
  coarse.edges.reserve(static_cast<std::size_t>(g.num_edges()) +
                       static_cast<std::size_t>(num_comms));
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(g.nv); ++v) {
    const Weight self = g.self_weight[static_cast<std::size_t>(v)];
    if (self > 0) {
      const V c = labels[static_cast<std::size_t>(v)];
      coarse.add(c, c, self);
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto i = static_cast<std::size_t>(e);
    coarse.add(labels[static_cast<std::size_t>(g.efirst[i])],
               labels[static_cast<std::size_t>(g.esecond[i])], g.eweight[i]);
  }
  return build_community_graph(coarse);
}

}  // namespace commdet
