// High-level detection facade: runtime-configurable scorer selection and
// optional refinement over the templated driver.
//
// The templated agglomerate() is the zero-overhead API; this facade is
// the convenience entry point for CLIs, config-driven services, and
// language bindings, where the metric arrives as data rather than as a
// type.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "commdet/algo/cdlp.hpp"
#include "commdet/algo/louvain.hpp"
#include "commdet/algo/plan.hpp"
#include "commdet/core/agglomerate.hpp"
#include "commdet/core/metrics.hpp"
#include "commdet/core/clustering.hpp"
#include "commdet/core/options.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/graph/edge_list.hpp"
#include "commdet/obs/trace.hpp"
#include "commdet/refine/multilevel.hpp"
#include "commdet/refine/refine.hpp"
#include "commdet/robust/sanitize.hpp"
#include "commdet/shard/shard_detect.hpp"
#include "commdet/shard/sharded_graph.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

enum class ScorerKind {
  kModularity,
  kConductance,
  kHeavyEdge,
  kResolutionModularity,
};

[[nodiscard]] constexpr std::string_view to_string(ScorerKind s) noexcept {
  switch (s) {
    case ScorerKind::kModularity: return "modularity";
    case ScorerKind::kConductance: return "conductance";
    case ScorerKind::kHeavyEdge: return "heavy-edge";
    case ScorerKind::kResolutionModularity: return "resolution-modularity";
  }
  return "unknown";
}

struct DetectOptions {
  ScorerKind scorer = ScorerKind::kModularity;
  double resolution_gamma = 1.0;  // for kResolutionModularity
  AgglomerationOptions agglomeration;

  enum class RefineMode {
    kNone,     // raw agglomerative result
    kFlat,     // one parallel local-move pass over the original graph
    kVCycle,   // multilevel refinement down the recorded hierarchy
  };
  RefineMode refine_mode = RefineMode::kNone;
  RefineOptions refinement;

  /// Back-compat convenience for the common flat case.
  bool refine = false;  // treated as kFlat when refine_mode is kNone

  /// Input sanitization for the EdgeList entry point: one parallel
  /// sweep rejecting or repairing bad endpoints/weights before graph
  /// build.  Ignored by the CommunityGraph overload (already built).
  bool sanitize_input = true;
  SanitizeOptions sanitize;
};

/// One spelling of the refine mode for span attributes, provenance, and
/// the report writer (previously duplicated as inline ternaries).
[[nodiscard]] constexpr std::string_view to_string(DetectOptions::RefineMode m) noexcept {
  switch (m) {
    case DetectOptions::RefineMode::kNone: return "none";
    case DetectOptions::RefineMode::kFlat: return "flat";
    case DetectOptions::RefineMode::kVCycle: return "vcycle";
  }
  return "unknown";
}

namespace detail {

/// Dispatches a runtime ScorerKind to the statically typed scorer and
/// invokes `run` with it.  Shared by the fresh and resume paths so both
/// select scorers identically.
template <typename F>
[[nodiscard]] auto with_scorer(ScorerKind kind, double gamma, F&& run) {
  switch (kind) {
    case ScorerKind::kConductance: return run(ConductanceScorer{});
    case ScorerKind::kHeavyEdge: return run(HeavyEdgeScorer{});
    case ScorerKind::kResolutionModularity: return run(ResolutionModularityScorer{gamma});
    case ScorerKind::kModularity: break;
  }
  return run(ModularityScorer{});
}

/// Folds the facade-level configuration (scorer identity, resolution
/// gamma) into the checkpoint fingerprint salt: a checkpoint written
/// under one metric must not silently resume under another.
[[nodiscard]] inline std::uint64_t fold_detect_salt(std::uint64_t salt, ScorerKind scorer,
                                                    double gamma) noexcept {
  std::uint64_t h = mix64(salt ^ 0x64657465637426ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(scorer));
  if (scorer == ScorerKind::kResolutionModularity)
    h = mix64(h ^ std::bit_cast<std::uint64_t>(gamma));
  return h;
}

/// The per-run option adjustments the facade applies before handing the
/// AgglomerationOptions to the driver.
[[nodiscard]] inline std::pair<AgglomerationOptions, DetectOptions::RefineMode>
prepare_agglomeration(const DetectOptions& opts) {
  auto agglomeration = opts.agglomeration;
  const auto mode = opts.refine_mode == DetectOptions::RefineMode::kNone && opts.refine
                        ? DetectOptions::RefineMode::kFlat
                        : opts.refine_mode;
  if (mode == DetectOptions::RefineMode::kVCycle) agglomeration.track_hierarchy = true;
  agglomeration.checkpoint.config_salt =
      fold_detect_salt(agglomeration.checkpoint.config_salt, opts.scorer, opts.resolution_gamma);
  return {std::move(agglomeration), mode};
}

/// Stamps the agglomerative backend's provenance onto a driver result.
template <VertexId V>
void stamp_agglomerative_provenance(Clustering<V>& result, DetectOptions::RefineMode mode) {
  result.algorithm.emplace();
  result.algorithm->name = "agglomerative";
  result.algorithm->iterations = result.num_levels();
  result.algorithm->converged = !is_degraded(result.reason);
  if (mode != DetectOptions::RefineMode::kNone)
    result.algorithm->refine = std::string(to_string(mode));
}

/// Post-agglomeration refinement shared by detect and resume.
template <VertexId V>
void apply_refinement(const CommunityGraph<V>& g, Clustering<V>& result,
                      DetectOptions::RefineMode mode, const DetectOptions& opts) {
  if (mode == DetectOptions::RefineMode::kFlat) {
    const auto stats = refine_partition(g, result.community, opts.refinement);
    result.final_modularity = stats.modularity_after;
    std::int64_t num = 0;
    for (const V c : result.community) num = std::max<std::int64_t>(num, c + 1);
    result.num_communities = num;
    // Coverage changed with the moves; recompute from the labels.
    result.final_coverage =
        evaluate_partition(g, std::span<const V>(result.community.data(),
                                                 result.community.size()))
            .coverage;
  } else if (mode == DetectOptions::RefineMode::kVCycle) {
    multilevel_refine(g, result, opts.refinement);
  }
}

}  // namespace detail

/// Detects communities with runtime-selected metric and optional
/// refinement.  The input graph is retained by the caller (copied into
/// the driver; refinement needs the original).
template <VertexId V>
[[nodiscard]] Clustering<V> detect_communities(const CommunityGraph<V>& g,
                                               const DetectOptions& opts = {}) {
  // Scorers that reward every merge need an external stop.
  const bool unbounded =
      opts.scorer == ScorerKind::kHeavyEdge || opts.scorer == ScorerKind::kConductance;
  if (unbounded && opts.agglomeration.min_coverage > 1.0 &&
      opts.agglomeration.min_communities <= 1 && opts.agglomeration.max_levels == 0 &&
      opts.agglomeration.max_community_size == 0) {
    throw std::invalid_argument(
        std::string(to_string(opts.scorer)) +
        " scoring never reaches a local maximum; set a coverage/size/level limit");
  }

  const auto [agglomeration, mode] = detail::prepare_agglomeration(opts);

  obs::ScopedSpan span("detect");
  span.attr("scorer", to_string(opts.scorer));
  span.attr("refine", to_string(mode));

  Clustering<V> result =
      detail::with_scorer(opts.scorer, opts.resolution_gamma, [&](const auto& scorer) {
        return agglomerate(CommunityGraph<V>(g), scorer, agglomeration);
      });

  detail::apply_refinement(g, result, mode, opts);
  detail::stamp_agglomerative_provenance(result, mode);
  return result;
}

/// Sharded detection entry point: runs the agglomeration over a
/// partitioned (optionally out-of-core) graph, consumed by the driver.
/// Same scorer/refinement knobs as detect_communities; when refinement
/// is requested the original graph is assembled from the shards first
/// (refinement moves vertices of the ORIGINAL graph, which the driver's
/// contractions destroy).  Out-of-core runs normally skip refinement —
/// assembly materializes the full graph in memory.
template <VertexId V>
[[nodiscard]] Clustering<V> detect_communities_sharded(ShardedGraph<V> sg,
                                                       const DetectOptions& opts = {}) {
  const bool unbounded =
      opts.scorer == ScorerKind::kHeavyEdge || opts.scorer == ScorerKind::kConductance;
  if (unbounded && opts.agglomeration.min_coverage > 1.0 &&
      opts.agglomeration.min_communities <= 1 && opts.agglomeration.max_levels == 0 &&
      opts.agglomeration.max_community_size == 0) {
    throw std::invalid_argument(
        std::string(to_string(opts.scorer)) +
        " scoring never reaches a local maximum; set a coverage/size/level limit");
  }

  const auto [agglomeration, mode] = detail::prepare_agglomeration(opts);

  obs::ScopedSpan span("detect");
  span.attr("scorer", to_string(opts.scorer));
  span.attr("refine", to_string(mode));
  span.attr("shards", static_cast<std::int64_t>(sg.num_shards()));

  // Refinement needs the original graph, which the sharded driver
  // consumes level by level — assemble a copy up front only when asked.
  CommunityGraph<V> original;
  const bool need_original = mode != DetectOptions::RefineMode::kNone;
  if (need_original) original = sg.assemble();

  Clustering<V> result =
      detail::with_scorer(opts.scorer, opts.resolution_gamma, [&](const auto& scorer) {
        return sharded_agglomerate(std::move(sg), scorer, agglomeration);
      });

  if (need_original) detail::apply_refinement(original, result, mode, opts);
  detail::stamp_agglomerative_provenance(result, mode);
  result.algorithm->name = "agglo-sharded";
  return result;
}

/// Plan-dispatched detection: runs the backend the DetectPlan selects.
/// `opts` configures the agglomerative backend (scorer, agglomeration,
/// refinement) exactly as the plan-less overload does; the CDLP and
/// Louvain backends are configured by the plan's own knobs and ignore
/// it.  Every backend returns the same Clustering contract with the
/// "algorithm" provenance object filled in.
template <VertexId V>
[[nodiscard]] Clustering<V> detect_communities(const CommunityGraph<V>& g,
                                               const DetectPlan& plan,
                                               const DetectOptions& opts = {}) {
  switch (plan.algorithm()) {
    case AlgorithmKind::kLabelPropagationSync:
      return cdlp_cluster(g, plan.cdlp(), /*synchronous=*/true);
    case AlgorithmKind::kLabelPropagationAsync:
      return cdlp_cluster(g, plan.cdlp(), /*synchronous=*/false);
    case AlgorithmKind::kLouvain:
      return parallel_louvain(g, plan.plm());
    case AlgorithmKind::kAggloSharded: {
      const auto& sh = plan.shard();
      return detect_communities_sharded(
          partition_graph(g, sh.shards, ShardSpill{sh.spill, sh.spill_dir}), opts);
    }
    case AlgorithmKind::kAgglomerative:
      break;
  }
  return detect_communities(g, opts);
}

/// Raw edge-list entry point: sanitizes (per opts.sanitize), builds the
/// community graph, and detects.  Throws CommdetError when the input is
/// rejected or unrepairable; a run-time failure *after* a valid build
/// degrades gracefully via the driver instead of throwing.
template <VertexId V>
[[nodiscard]] Clustering<V> detect_communities(const EdgeList<V>& edges,
                                               const DetectOptions& opts = {}) {
  EdgeList<V> cleaned = edges;
  if (opts.sanitize_input)
    (void)sanitize_edges(cleaned, opts.sanitize).value_or_throw();
  return detect_communities(build_community_graph(cleaned), opts);
}

/// Resumes an interrupted detect_communities run from a checkpoint
/// (consumed).  `g` is the same original graph the checkpoint's run
/// started from — it is needed for the refinement passes, which operate
/// on the original vertices; the agglomeration itself continues from the
/// checkpointed community graph.  The options must match the original
/// run's configuration (ErrorCode::kCheckpointMismatch otherwise).
template <VertexId V>
[[nodiscard]] Clustering<V> resume_detect(const CommunityGraph<V>& g, CheckpointState<V> ckpt,
                                          const DetectOptions& opts = {}) {
  const auto [agglomeration, mode] = detail::prepare_agglomeration(opts);

  obs::ScopedSpan span("detect");
  span.attr("scorer", to_string(opts.scorer));
  span.attr("resumed_from", ckpt.source_path);

  Clustering<V> result =
      detail::with_scorer(opts.scorer, opts.resolution_gamma, [&](const auto& scorer) {
        return resume_agglomerate(std::move(ckpt), scorer, agglomeration);
      });

  detail::apply_refinement(g, result, mode, opts);
  detail::stamp_agglomerative_provenance(result, mode);
  return result;
}

}  // namespace commdet
