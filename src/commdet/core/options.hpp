// Driver configuration and termination reporting (paper Sec. III).
//
// "Termination occurs either when the algorithm finds a local maximum or
// according to external constraints. [...] Real applications will impose
// additional constraints like a minimum number of communities or maximum
// community size.  Following the spirit of the 10th DIMACS Implementation
// Challenge rules, Section V's performance experiments terminate once at
// least half the initial graph's edges are contained within the
// communities, a coverage >= 0.5."
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "commdet/robust/budget.hpp"

namespace commdet {

enum class MatcherKind {
  kUnmatchedList,     // the paper's improved algorithm (default)
  kEdgeSweep,         // the paper's original algorithm (ablation baseline)
  kSequentialGreedy,  // deterministic Preis-style reference
};

enum class ContractorKind {
  kBucketSort,  // the paper's improved method (default)
  kHashChain,   // the paper's original Feo-style method (ablation baseline)
  kSpGemm,      // A' = S^T A S via Gustavson SpGEMM (Sec. VI observation)
};

/// Crash-safe checkpointing of the agglomeration loop (see
/// robust/checkpoint.hpp for the snapshot format and loader).  When a
/// directory is set, the driver snapshots the resumable state at level
/// boundaries; an interrupted run restarts from its newest valid
/// generation via resume_agglomerate / resume_detect.
struct CheckpointOptions {
  /// Directory for checkpoint generations.  Empty disables checkpointing.
  std::string directory;

  /// Write a checkpoint after every this-many completed levels.
  int every_levels = 1;

  /// Newest generations retained after a successful write (>= 1).  Two
  /// generations survive a latest-generation corruption.
  int keep_generations = 2;

  /// Also write a final checkpoint when a budget violation, interrupt,
  /// or contained error stops the run, so the work completed so far is
  /// handed to the next invocation (TerminationReason::kCheckpointed).
  bool on_exhaustion = true;

  /// Extra entropy folded into the configuration fingerprint.  Callers
  /// that select behaviour outside AgglomerationOptions (scorer kind,
  /// resolution gamma, input graph identity) fold it in here so a
  /// resume under a different setup is refused.
  std::uint64_t config_salt = 0;

  [[nodiscard]] bool enabled() const noexcept { return !directory.empty(); }
};

struct AgglomerationOptions {
  /// Stop once coverage (fraction of total weight inside communities)
  /// reaches this value.  Values > 1 disable the criterion; the paper's
  /// performance experiments use 0.5.
  double min_coverage = 2.0;

  /// Stop when at most this many communities remain.
  std::int64_t min_communities = 1;

  /// Forbid merges that would exceed this many original vertices per
  /// community.  0 disables the constraint.
  std::int64_t max_community_size = 0;

  /// Hard cap on contraction levels.  0 disables.
  int max_levels = 0;

  /// Record the per-level relabeling maps (the contraction dendrogram)
  /// in Clustering::hierarchy.  Costs one |V_level| vector per level.
  bool track_hierarchy = false;

  /// Resource budget for the whole run (wall clock, memory estimate,
  /// progress watchdog).  Default: unlimited.  On exhaustion the driver
  /// degrades gracefully: it stops and returns the best clustering
  /// completed so far with the matching TerminationReason.
  RunBudget budget;

  /// Crash-safe checkpoint/resume.  Disabled unless a directory is set.
  CheckpointOptions checkpoint;

  MatcherKind matcher = MatcherKind::kUnmatchedList;
  ContractorKind contractor = ContractorKind::kBucketSort;
};

enum class TerminationReason {
  kLocalMaximum,     // no edge had a positive score
  kNoMatches,        // positive edges existed but none could pair (size cap)
  kCoverage,         // coverage threshold reached
  kMinCommunities,   // community count floor reached
  kLevelCap,         // max_levels reached
  kDeadline,         // RunBudget wall-clock limit; best-so-far returned
  kMemoryBudget,     // RunBudget memory ceiling; best-so-far returned
  kStalled,          // RunBudget progress watchdog; best-so-far returned
  kContainedError,   // a level failed; best-so-far returned, see Clustering::error
  kInterrupted,      // stop requested (SIGINT/SIGTERM); best-so-far returned
  kCheckpointed,     // run stopped early but its state was checkpointed:
                     // re-run with resume to continue from here
};

/// True when the run ended early but still returned a valid (degraded)
/// best-so-far clustering rather than an optimum of its criterion.
[[nodiscard]] constexpr bool is_degraded(TerminationReason r) noexcept {
  return r == TerminationReason::kDeadline || r == TerminationReason::kMemoryBudget ||
         r == TerminationReason::kStalled || r == TerminationReason::kContainedError ||
         r == TerminationReason::kInterrupted || r == TerminationReason::kCheckpointed;
}

[[nodiscard]] constexpr std::string_view to_string(TerminationReason r) noexcept {
  switch (r) {
    case TerminationReason::kLocalMaximum: return "local-maximum";
    case TerminationReason::kNoMatches: return "no-matches";
    case TerminationReason::kCoverage: return "coverage";
    case TerminationReason::kMinCommunities: return "min-communities";
    case TerminationReason::kLevelCap: return "level-cap";
    case TerminationReason::kDeadline: return "deadline";
    case TerminationReason::kMemoryBudget: return "memory-budget";
    case TerminationReason::kStalled: return "stalled";
    case TerminationReason::kContainedError: return "contained-error";
    case TerminationReason::kInterrupted: return "interrupted";
    case TerminationReason::kCheckpointed: return "checkpointed";
  }
  return "unknown";
}

[[nodiscard]] constexpr std::string_view to_string(MatcherKind m) noexcept {
  switch (m) {
    case MatcherKind::kUnmatchedList: return "unmatched-list";
    case MatcherKind::kEdgeSweep: return "edge-sweep";
    case MatcherKind::kSequentialGreedy: return "sequential-greedy";
  }
  return "unknown";
}

[[nodiscard]] constexpr std::string_view to_string(ContractorKind c) noexcept {
  switch (c) {
    case ContractorKind::kBucketSort: return "bucket-sort";
    case ContractorKind::kHashChain: return "hash-chain";
    case ContractorKind::kSpGemm: return "spgemm";
  }
  return "unknown";
}

}  // namespace commdet
