// Quality metrics computed from scratch over the *original* graph and a
// community assignment.  Independent of the driver's incremental
// bookkeeping, so tests can cross-check the two.
#pragma once

#include <atomic>
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "commdet/graph/community_graph.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

/// Aggregate quality of a partition.
struct PartitionQuality {
  double modularity = 0.0;
  double coverage = 0.0;            // fraction of weight inside communities
  double max_conductance = 0.0;     // worst community
  double mean_conductance = 0.0;
  std::int64_t num_communities = 0;
  std::int64_t largest_community = 0;  // vertex count
  std::int64_t smallest_community = 0;
};

/// Computes modularity/coverage/conductance of `labels` over g.  Labels
/// must be dense in [0, num_communities).
template <VertexId V>
[[nodiscard]] PartitionQuality evaluate_partition(const CommunityGraph<V>& g,
                                                  std::span<const V> labels) {
  std::int64_t num_comms = 0;
  for (const V l : labels) num_comms = std::max<std::int64_t>(num_comms, l + 1);

  std::vector<Weight> internal(static_cast<std::size_t>(num_comms), 0);
  std::vector<Weight> volume(static_cast<std::size_t>(num_comms), 0);
  std::vector<std::int64_t> size(static_cast<std::size_t>(num_comms), 0);

  const auto nv = static_cast<std::int64_t>(g.nv);
  const auto ne = static_cast<std::int64_t>(g.num_edges());
  const std::int64_t nchunks = std::max(1, omp_get_max_threads());
  if (num_comms * nchunks <= nv + ne) {
    // Few communities relative to the input: per-edge atomic adds would
    // serialize on the handful of hot community slots (all of a big
    // community's edges hit the same counter), so accumulate into
    // per-chunk histograms and reduce.  Weights are integers — the
    // result is bit-identical to the atomic path.
    std::vector<std::vector<Weight>> cint(static_cast<std::size_t>(nchunks));
    std::vector<std::vector<Weight>> cvol(static_cast<std::size_t>(nchunks));
    std::vector<std::vector<std::int64_t>> csize(static_cast<std::size_t>(nchunks));
    parallel_for_dynamic(nchunks, [&](std::int64_t c) {
      auto& li = cint[static_cast<std::size_t>(c)];
      auto& lv = cvol[static_cast<std::size_t>(c)];
      auto& ls = csize[static_cast<std::size_t>(c)];
      li.assign(static_cast<std::size_t>(num_comms), 0);
      lv.assign(static_cast<std::size_t>(num_comms), 0);
      ls.assign(static_cast<std::size_t>(num_comms), 0);
      for (std::int64_t v = nv * c / nchunks, ve = nv * (c + 1) / nchunks; v < ve; ++v) {
        const auto cc = static_cast<std::size_t>(labels[static_cast<std::size_t>(v)]);
        const Weight self = g.self_weight[static_cast<std::size_t>(v)];
        li[cc] += self;
        lv[cc] += 2 * self;
        ++ls[cc];
      }
      for (std::int64_t e = ne * c / nchunks, ee = ne * (c + 1) / nchunks; e < ee; ++e) {
        const auto i = static_cast<std::size_t>(e);
        const auto ca =
            static_cast<std::size_t>(labels[static_cast<std::size_t>(g.efirst[i])]);
        const auto cb =
            static_cast<std::size_t>(labels[static_cast<std::size_t>(g.esecond[i])]);
        const Weight w = g.eweight[i];
        lv[ca] += w;
        lv[cb] += w;
        if (ca == cb) li[ca] += w;
      }
    }, /*chunk=*/1);
    parallel_for(num_comms, [&](std::int64_t cc) {
      const auto i = static_cast<std::size_t>(cc);
      for (std::int64_t c = 0; c < nchunks; ++c) {
        internal[i] += cint[static_cast<std::size_t>(c)][i];
        volume[i] += cvol[static_cast<std::size_t>(c)][i];
        size[i] += csize[static_cast<std::size_t>(c)][i];
      }
    });
  } else {
    parallel_for(nv, [&](std::int64_t v) {
      const auto c = static_cast<std::size_t>(labels[static_cast<std::size_t>(v)]);
      const Weight self = g.self_weight[static_cast<std::size_t>(v)];
      std::atomic_ref<Weight>(internal[c]).fetch_add(self, std::memory_order_relaxed);
      std::atomic_ref<Weight>(volume[c]).fetch_add(2 * self, std::memory_order_relaxed);
      std::atomic_ref<std::int64_t>(size[c]).fetch_add(1, std::memory_order_relaxed);
    });
    parallel_for(g.num_edges(), [&](std::int64_t e) {
      const auto i = static_cast<std::size_t>(e);
      const auto ca = static_cast<std::size_t>(labels[static_cast<std::size_t>(g.efirst[i])]);
      const auto cb = static_cast<std::size_t>(labels[static_cast<std::size_t>(g.esecond[i])]);
      const Weight w = g.eweight[i];
      std::atomic_ref<Weight>(volume[ca]).fetch_add(w, std::memory_order_relaxed);
      std::atomic_ref<Weight>(volume[cb]).fetch_add(w, std::memory_order_relaxed);
      if (ca == cb)
        std::atomic_ref<Weight>(internal[ca]).fetch_add(w, std::memory_order_relaxed);
    });
  }

  PartitionQuality q;
  q.num_communities = num_comms;
  if (g.total_weight == 0 || num_comms == 0) {
    q.coverage = 1.0;
    if (num_comms > 0) {
      q.largest_community = *std::max_element(size.begin(), size.end());
      q.smallest_community = *std::min_element(size.begin(), size.end());
    }
    return q;
  }
  const auto w = static_cast<double>(g.total_weight);
  Weight inside = 0;
  double conductance_sum = 0.0;
  for (std::int64_t c = 0; c < num_comms; ++c) {
    const auto i = static_cast<std::size_t>(c);
    inside += internal[i];
    const double vol = static_cast<double>(volume[i]) / (2.0 * w);
    q.modularity += static_cast<double>(internal[i]) / w - vol * vol;
    const Weight cut = volume[i] - 2 * internal[i];
    const double denom =
        std::min(static_cast<double>(volume[i]), 2.0 * w - static_cast<double>(volume[i]));
    const double phi = (cut == 0 || denom <= 0.0) ? 0.0 : static_cast<double>(cut) / denom;
    conductance_sum += phi;
    q.max_conductance = std::max(q.max_conductance, phi);
  }
  q.coverage = static_cast<double>(inside) / w;
  q.mean_conductance = conductance_sum / static_cast<double>(num_comms);
  q.largest_community = *std::max_element(size.begin(), size.end());
  q.smallest_community = *std::min_element(size.begin(), size.end());
  return q;
}

/// Adjusted Rand index between two labelings of the same vertex set.
/// 1.0 = identical partitions, ~0 = random agreement.  Used to score
/// planted-partition recovery against ground truth.
template <typename LabelA, typename LabelB>
[[nodiscard]] double adjusted_rand_index(std::span<const LabelA> a,
                                         std::span<const LabelB> b) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  if (n != static_cast<std::int64_t>(b.size()) || n < 2) return 1.0;

  std::unordered_map<std::int64_t, std::int64_t> row_sum, col_sum;
  std::unordered_map<std::int64_t, std::int64_t> cell;  // key = row * 2^32 + col hash
  std::unordered_map<std::int64_t, std::int64_t> row_of, col_of;
  std::int64_t next_row = 0, next_col = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto ra = static_cast<std::int64_t>(a[static_cast<std::size_t>(i)]);
    const auto rb = static_cast<std::int64_t>(b[static_cast<std::size_t>(i)]);
    auto [ita, newa] = row_of.try_emplace(ra, next_row);
    if (newa) ++next_row;
    auto [itb, newb] = col_of.try_emplace(rb, next_col);
    if (newb) ++next_col;
    ++row_sum[ita->second];
    ++col_sum[itb->second];
    ++cell[ita->second * (std::int64_t{1} << 32) + itb->second];
  }

  const auto choose2 = [](std::int64_t k) {
    return static_cast<double>(k) * static_cast<double>(k - 1) / 2.0;
  };
  double sum_cells = 0.0, sum_rows = 0.0, sum_cols = 0.0;
  for (const auto& [key, count] : cell) sum_cells += choose2(count);
  for (const auto& [key, count] : row_sum) sum_rows += choose2(count);
  for (const auto& [key, count] : col_sum) sum_cols += choose2(count);
  const double total_pairs = choose2(n);
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;
  return (sum_cells - expected) / (max_index - expected);
}

/// Normalized mutual information between two labelings (max-normalized,
/// natural log).  1.0 = identical partitions up to relabeling, ~0 =
/// independent.  Complementary to ARI: NMI is information-theoretic and
/// the standard community-recovery score in the LFR literature.
template <typename LabelA, typename LabelB>
[[nodiscard]] double normalized_mutual_information(std::span<const LabelA> a,
                                                   std::span<const LabelB> b) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  if (n != static_cast<std::int64_t>(b.size()) || n == 0) return 1.0;

  std::unordered_map<std::int64_t, std::int64_t> row, col;
  for (std::int64_t i = 0; i < n; ++i) {
    ++row[static_cast<std::int64_t>(a[static_cast<std::size_t>(i)])];
    ++col[static_cast<std::int64_t>(b[static_cast<std::size_t>(i)])];
  }
  const auto h = [n](const std::unordered_map<std::int64_t, std::int64_t>& counts) {
    double entropy = 0.0;
    for (const auto& [key, count] : counts) {
      const double p = static_cast<double>(count) / static_cast<double>(n);
      entropy -= p * std::log(p);
    }
    return entropy;
  };
  const double ha = h(row);
  const double hb = h(col);
  if (ha == 0.0 && hb == 0.0) return 1.0;  // both trivial partitions

  // Joint counts, keyed exactly (nested map avoids pair-key collisions).
  std::unordered_map<std::int64_t, std::unordered_map<std::int64_t, std::int64_t>> joint;
  for (std::int64_t i = 0; i < n; ++i)
    ++joint[static_cast<std::int64_t>(a[static_cast<std::size_t>(i)])]
           [static_cast<std::int64_t>(b[static_cast<std::size_t>(i)])];
  double mi = 0.0;
  for (const auto& [ra, cols] : joint) {
    for (const auto& [rb, count] : cols) {
      const double pxy = static_cast<double>(count) / static_cast<double>(n);
      const double px = static_cast<double>(row[ra]) / static_cast<double>(n);
      const double py = static_cast<double>(col[rb]) / static_cast<double>(n);
      mi += pxy * std::log(pxy / (px * py));
    }
  }
  const double denom = std::max(ha, hb);
  return denom > 0.0 ? mi / denom : 1.0;
}

}  // namespace commdet
