// DynamicCommunities: batched edge updates with incremental
// re-agglomeration over a maintained base graph + clustering.
//
// apply_batch() is transactional: the batch is sanitized, normalized
// (last-writer-wins), applied to a *staged* copy of the graph arrays
// (graph/builder.hpp apply_delta), and the clustering is restored by
// seeded re-agglomeration (dyn/seeded.hpp).  Only when every step
// succeeds are the staged graph and the new clustering committed; any
// failure — injected fault, budget violation, contained exception —
// leaves the previous graph and clustering untouched (no torn
// membership), and the structured error is returned.
//
// A batch with no effective change (all deltas were no-ops, e.g. an
// empty batch or deleting absent edges) takes a fast path that keeps
// the current clustering bit-for-bit: the agglomeration loop always
// contracts at least one level, so re-running it from an unchanged warm
// start could only churn labels for nothing.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <span>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "commdet/core/clustering.hpp"
#include "commdet/core/detect.hpp"
#include "commdet/core/metrics.hpp"
#include "commdet/dyn/seeded.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/graph/community_graph.hpp"
#include "commdet/graph/delta.hpp"
#include "commdet/io/snapshot.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/report.hpp"
#include "commdet/obs/trace.hpp"
#include "commdet/robust/budget.hpp"
#include "commdet/robust/checkpoint.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/robust/expected.hpp"
#include "commdet/robust/fault_injection.hpp"
#include "commdet/robust/sanitize.hpp"
#include "commdet/util/timer.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct DynamicOptions {
  /// Scorer / agglomeration / refinement configuration for the initial
  /// detection and every seeded re-agglomeration.
  DetectOptions detect;

  /// Halo radius: how many hops beyond the directly touched vertices
  /// are unseated into singletons before re-agglomeration.  0 = only
  /// the endpoints of changed edges; larger values trade update cost
  /// for quality headroom around the perturbation.  -1 = adaptive: pick
  /// the radius per batch from the perturbation itself, expanding until
  /// the dirty frontier's cut-weight share drops below
  /// `halo_cut_threshold` or `halo_max_hops` is reached.
  int halo_hops = 1;

  /// Adaptive-halo stop condition (halo_hops == -1 only): expansion
  /// stops once cut(dirty, clean) / volume(dirty) falls to or below
  /// this share — the perturbation is then mostly self-contained.
  double halo_cut_threshold = 0.25;

  /// Adaptive-halo radius cap (halo_hops == -1 only).
  int halo_max_hops = 4;

  /// Quality-triggered full refresh: when the maintained clustering's
  /// modularity falls more than this margin below the best modularity
  /// seen since the last full recompute (a cheap upper-bound proxy —
  /// incremental maintenance only loses quality relative to it),
  /// recompute() runs automatically after the batch commits.  0
  /// disables.  Modularity-family scorers only.
  double refresh_margin = 0.0;

  /// Cadence-triggered full refresh: recompute() after every N
  /// committed batches regardless of drift.  0 disables.  Like the run
  /// budget, refresh cadence is operational tuning: it is excluded from
  /// the config fingerprint, so a restarted stream may change it.
  int refresh_every = 0;

  /// Backend the triggered refresh runs (DetectPlan; default
  /// agglomerative = the classic recompute()).  A label-propagation
  /// plan makes routine refresh ticks O(E)-per-sweep instead of a full
  /// agglomeration — the serve layer's quality-vs-latency knob.  Like
  /// refresh cadence, this is operational tuning excluded from the
  /// config fingerprint.
  DetectPlan refresh_plan;

  /// Level cap for the warm (seeded) re-agglomeration only, applied
  /// when detect.agglomeration.max_levels is unset.  Heavy matching
  /// absorbs the unseated singletons around a hub one per level (a
  /// matching pairs each community with at most one partner), so the
  /// warm run can trail off into hundreds of near-empty levels that
  /// shrink the graph by O(1) vertices each.  Capping the tail loses
  /// almost no quality — the stragglers are recovered by refinement
  /// (one local-move sweep handles a star) or by the kept-prior quality
  /// guard.  0 disables the cap.  Ignored by recompute(), which is a
  /// full from-scratch run.
  int warm_max_levels = 16;

  /// Per-batch resource budget.  When limited, the wall-clock deadline
  /// covers the whole batch (apply + recompute) and the budget is also
  /// handed to the re-agglomeration driver, which degrades gracefully
  /// (commits the best clustering it reached) rather than failing the
  /// batch.  A deadline that fires *before* re-agglomeration starts
  /// fails the batch and rolls back.
  RunBudget batch_budget;

  /// Batch sanitization (robust/sanitize.hpp sanitize_deltas).
  bool sanitize_input = true;
  SanitizeOptions sanitize;
};

/// Everything about one community a membership query wants alongside
/// the label: member count, collapsed internal weight, and volume.
struct CommunityStats {
  std::int64_t size = 0;
  Weight internal_weight = 0;  // edge weight with both endpoints inside
  Weight volume = 0;           // sum of member volumes (2*internal + cut)
};

/// Snapshot payload version for save_state/load_state.  Version 2:
/// dynamic states live in the same `checkpoint-NNNNNN.ckpt` rotation as
/// agglomeration checkpoints (which are version 1), so the version
/// bump is also what turns "pointed a dynamic resume at an
/// agglomeration checkpoint dir" into a clean format error.  Version 3
/// adds the clustering quality scalars (modularity / coverage), so a
/// restart — or a follower promoted to writer — reports the same
/// QUALITY line without needing a WAL record to replay.
inline constexpr std::uint32_t kDynStateFormatVersion = 3;

/// Fingerprint of the configuration that shapes dynamic results; a
/// saved state is refused under a different configuration.  Refresh
/// cadence and budgets are excluded (operational knobs, legitimately
/// changeable across restarts).
[[nodiscard]] inline std::uint64_t dynamic_config_fingerprint(const DynamicOptions& o) {
  std::uint64_t h = options_fingerprint(o.detect.agglomeration);
  h = detail::fold_detect_salt(h, o.detect.scorer, o.detect.resolution_gamma);
  h = mix64(h ^ static_cast<std::uint64_t>(o.warm_max_levels));
  h = mix64(h ^ static_cast<std::uint64_t>(o.halo_hops));
  if (o.halo_hops < 0) {
    h = mix64(h ^ std::bit_cast<std::uint64_t>(o.halo_cut_threshold));
    h = mix64(h ^ static_cast<std::uint64_t>(o.halo_max_hops));
  }
  return h;
}

template <VertexId V>
class DynamicCommunities {
 public:
  /// Takes ownership of the base graph and runs the initial detection.
  explicit DynamicCommunities(CommunityGraph<V> base, DynamicOptions opts = {})
      : base_(std::move(base)), opts_(std::move(opts)) {
    clustering_ = detect_communities(base_, opts_.detect);
    clustering_.compact_labels();
    stats_.halo_hops = opts_.halo_hops;
  }

  /// Adopts an existing clustering over `base` (e.g. loaded from a
  /// prior run) instead of recomputing it.  Throws kInvalidArgument
  /// when the label vector does not cover the graph.
  DynamicCommunities(CommunityGraph<V> base, Clustering<V> existing,
                     DynamicOptions opts = {})
      : base_(std::move(base)), opts_(std::move(opts)), clustering_(std::move(existing)) {
    if (static_cast<std::int64_t>(clustering_.community.size()) !=
        static_cast<std::int64_t>(base_.nv))
      throw_error(ErrorCode::kInvalidArgument, Phase::kDynamic,
                  "adopted clustering covers " + std::to_string(clustering_.community.size()) +
                      " vertices, graph has " + std::to_string(base_.nv));
    clustering_.compact_labels();
    stats_.halo_hops = opts_.halo_hops;
  }

  /// Applies one batch transactionally.  On success the returned row
  /// describes the committed update; on failure the prior graph and
  /// clustering are fully intact and the structured error says why.
  Expected<obs::DynamicBatchRow> apply_batch(const DeltaBatch<V>& batch) {
    obs::ScopedSpan span("dyn.batch");
    span.attr("deltas", batch.size());
    obs::DynamicBatchRow row;
    row.batch = stats_.batches;
    row.deltas = batch.size();
    try {
      BudgetTracker tracker(opts_.batch_budget);

      DeltaBatch<V> cleaned = batch;
      if (opts_.sanitize_input) {
        auto rep = sanitize_deltas(cleaned, base_.nv, opts_.sanitize);
        if (!rep.has_value()) {
          ++stats_.rolled_back;
          return Unexpected(rep.error());
        }
      }
      const auto normalized = normalize_deltas(cleaned);

      WallTimer apply_timer;
      COMMDET_FAULT_POINT(fault::kDynApply, Phase::kDynamic);
      DeltaApplied<V> applied =
          apply_delta(base_, std::span<const EdgeDelta<V>>(normalized));
      row.apply_seconds = apply_timer.seconds();
      row.effective = applied.report.effective;
      row.touched = static_cast<std::int64_t>(applied.touched.size());
      span.attr("effective", row.effective);

      if (applied.touched.empty()) {
        // Nothing changed: keep the current clustering bit-for-bit
        // (modulo a cadence-due refresh — no-op batches still count).
        maybe_refresh(row, tracker);
        fill_quality(row);
        commit_stats(row);
        return row;
      }

      if (auto err = tracker.check_deadline(std::numeric_limits<int>::max())) {
        ++stats_.rolled_back;
        return Unexpected(*err);
      }

      COMMDET_FAULT_POINT(fault::kDynRecompute, Phase::kDynamic);
      std::vector<std::uint8_t> dirty;
      if (opts_.halo_hops < 0) {
        AdaptiveHalo halo = expand_halo_adaptive(
            applied.graph, std::span<const V>(applied.touched),
            opts_.halo_cut_threshold, opts_.halo_max_hops);
        dirty = std::move(halo.dirty);
        row.halo_hops_used = halo.hops;
      } else {
        dirty = expand_halo(applied.graph, std::span<const V>(applied.touched),
                            opts_.halo_hops);
        row.halo_hops_used = opts_.halo_hops;
      }
      std::int64_t dirty_count = 0;
      for (const auto f : dirty) dirty_count += f;
      row.dirty = dirty_count;

      auto [seeds, num_seeds] =
          seed_labels<V>(std::span<const V>(clustering_.community),
                         std::span<const std::uint8_t>(dirty));
      row.seed_communities = num_seeds;
      span.attr("dirty", dirty_count);
      span.attr("seeds", num_seeds);

      DetectOptions detect = opts_.detect;
      if (detect.agglomeration.max_levels == 0 && opts_.warm_max_levels > 0)
        detect.agglomeration.max_levels = opts_.warm_max_levels;
      if (opts_.batch_budget.limited()) {
        // Hand the remainder of the batch budget to the driver; it
        // degrades gracefully instead of discarding the batch.
        detect.agglomeration.budget = opts_.batch_budget;
        if (opts_.batch_budget.max_seconds > 0.0)
          detect.agglomeration.budget.max_seconds =
              opts_.batch_budget.max_seconds - tracker.elapsed_seconds();
      }
      WallTimer recompute_timer;
      Clustering<V> next = seeded_agglomerate(
          applied.graph, std::span<const V>(seeds), num_seeds, detect);

      // Unseating discards the prior assignment's quality floor, and
      // greedy re-climbing can land in a worse basin — especially when
      // the halo dissolved most of the graph around frozen heavy
      // survivors.  The prior labels are still a valid assignment for
      // the updated graph (same vertex set), so commit whichever is
      // better: a batch never leaves the clustering worse than having
      // applied no re-agglomeration at all.
      if (opts_.detect.scorer == ScorerKind::kModularity ||
          opts_.detect.scorer == ScorerKind::kResolutionModularity) {
        const auto prior = evaluate_partition(
            applied.graph, std::span<const V>(clustering_.community.data(),
                                              clustering_.community.size()));
        if (prior.modularity > next.final_modularity) {
          Clustering<V> kept = clustering_;
          kept.final_modularity = prior.modularity;
          kept.final_coverage = prior.coverage;
          next = std::move(kept);
          row.kept_prior = true;
        }
      }
      row.recompute_seconds = recompute_timer.seconds();

      // Commit point: everything after this must not throw.
      base_ = std::move(applied.graph);
      clustering_ = std::move(next);
      clustering_.compact_labels();
      community_cache_.clear();

      maybe_refresh(row, tracker);
      fill_quality(row);
      commit_stats(row);
      return row;
    } catch (const std::exception& e) {
      ++stats_.rolled_back;
      span.set_error();
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }
  }

  /// Full from-scratch refresh of the clustering over the current base
  /// graph (the quality-triggered escape hatch when incremental drift
  /// accumulates).
  const Clustering<V>& recompute() {
    clustering_ = detect_communities(base_, opts_.detect);
    clustering_.compact_labels();
    community_cache_.clear();
    // The refreshed score is the new drift reference, even when it is
    // lower than the old one: a genuinely degraded graph must not
    // trigger a refresh on every subsequent batch.
    reference_modularity_ = clustering_.final_modularity;
    batches_since_refresh_ = 0;
    return clustering_;
  }

  [[nodiscard]] const CommunityGraph<V>& graph() const noexcept { return base_; }
  [[nodiscard]] const Clustering<V>& clustering() const noexcept { return clustering_; }
  [[nodiscard]] const DynamicOptions& options() const noexcept { return opts_; }
  [[nodiscard]] const obs::DynamicRunStats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::int64_t num_communities() const noexcept {
    return clustering_.num_communities;
  }

  /// Community label of vertex v.
  [[nodiscard]] V community_of(V v) const {
    return clustering_.community[static_cast<std::size_t>(v)];
  }

  /// Size / internal weight / volume of community c (cached; the cache
  /// is rebuilt lazily after each committed batch).
  [[nodiscard]] const CommunityStats& community_stats(V c) const {
    if (community_cache_.empty()) build_community_cache();
    return community_cache_[static_cast<std::size_t>(c)];
  }

  /// All communities' stats in label order (same lazy cache).  The
  /// streaming service snapshots this vector at epoch-publish time.
  [[nodiscard]] const std::vector<CommunityStats>& community_stats_all() const {
    if (community_cache_.empty()) build_community_cache();
    return community_cache_;
  }

  /// Committed-batch count — the epoch number the streaming service
  /// publishes and the WAL sequences against.
  [[nodiscard]] std::int64_t epoch() const noexcept { return stats_.batches; }

  /// Generation load_state restored from, -1 for a fresh instance.
  [[nodiscard]] std::int64_t loaded_generation() const noexcept {
    return loaded_generation_;
  }

  /// CRC32 over the i64-widened label array: the membership identity
  /// carried by WAL commit records and checked on replay.  Label-width
  /// independent, like the on-disk array encoding.
  [[nodiscard]] static std::uint32_t labels_checksum(std::span<const V> labels) noexcept {
    std::uint32_t crc = 0;
    for (const V l : labels) {
      const auto wide = static_cast<std::int64_t>(l);
      crc = crc32_update(crc, &wide, sizeof wide);
    }
    return crc;
  }

  /// Persists graph + clustering + aggregate counters as the next
  /// checkpoint generation in `dir` (created on demand), pruning
  /// generations beyond `keep_generations` only after the new one is
  /// durably committed — the robust/checkpoint.hpp rotation contract,
  /// so a torn latest generation falls back to the previous one on
  /// load.  Returns the generation written.
  std::int64_t save_state(const std::string& dir, int keep_generations = 2) const {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
      throw_error(ErrorCode::kIoOpen, Phase::kDynamic,
                  "cannot create state directory: " + dir + " (" + ec.message() + ")");
    auto existing = list_checkpoints(dir);
    const std::int64_t generation = existing.empty() ? 1 : existing.front().first + 1;
    write_state_file(checkpoint_path(dir, generation));
    const int keep = keep_generations < 1 ? 1 : keep_generations;
    for (std::size_t i = static_cast<std::size_t>(keep) - 1; i < existing.size(); ++i)
      std::filesystem::remove(existing[i].second, ec);  // best-effort prune
    return generation;
  }

  /// Serializes into one explicit file, crash-atomically
  /// (io/snapshot.hpp container).  Building block of save_state.
  void write_state_file(const std::string& path) const {
    SnapshotWriter w(path, kDynStateFormatVersion);
    w.write_u64(dynamic_config_fingerprint(opts_));
    w.write_i64(static_cast<std::int64_t>(base_.nv));
    w.write_i64_array(base_.bucket_begin);
    w.write_i64_array(base_.bucket_end);
    w.write_i64_array(base_.self_weight);
    w.write_i64_array(base_.volume);
    w.write_i64_array(base_.efirst);
    w.write_i64_array(base_.esecond);
    w.write_i64_array(base_.eweight);
    w.write_i64(base_.total_weight);
    w.write_i64_array(clustering_.community);
    w.write_i64(clustering_.num_communities);
    w.write_f64(clustering_.final_modularity);
    w.write_f64(clustering_.final_coverage);
    w.write_i64(stats_.batches);
    w.write_i64(stats_.updates_applied);
    w.write_i64(stats_.updates_effective);
    w.write_i64(stats_.rolled_back);
    w.write_i64(stats_.kept_prior);
    w.write_i64(stats_.full_refreshes);
    w.write_f64(stats_.apply_seconds);
    w.write_f64(stats_.recompute_seconds);
    w.commit();
  }

  /// Restores the newest *valid* saved generation in `dir`: candidates
  /// are tried newest-first and corrupt ones (torn, truncated,
  /// bit-flipped, wrong version) are skipped, so one bad generation
  /// degrades to the one before it rather than to data loss.  A
  /// configuration mismatch is NOT corruption: it refuses immediately
  /// (kCheckpointMismatch) instead of silently resuming an older
  /// generation under a different metric or halo policy.
  [[nodiscard]] static Expected<DynamicCommunities<V>> load_state(const std::string& dir,
                                                                  DynamicOptions opts = {}) {
    const auto candidates = list_checkpoints(dir);
    if (candidates.empty())
      return Unexpected(Error{ErrorCode::kIoOpen, Phase::kDynamic,
                              "no dynamic state found in " + dir});
    for (const auto& [generation, path] : candidates) {
      auto loaded = load_state_file(path, opts);
      if (loaded.has_value()) {
        loaded.value().loaded_generation_ = generation;
        return loaded;
      }
      if (loaded.error().code == ErrorCode::kCheckpointMismatch) return loaded;
      // Torn/corrupt generation: fall back to the previous one.
    }
    return Unexpected(Error{ErrorCode::kIoFormat, Phase::kDynamic,
                            "no valid dynamic state generation in " + dir});
  }

  /// Restores one explicit state file.  Refused (kCheckpointMismatch)
  /// when `opts` differs from the configuration the state was saved
  /// under, so a resumed stream cannot silently continue with a
  /// different metric or halo radius.
  [[nodiscard]] static Expected<DynamicCommunities<V>> load_state_file(
      const std::string& path, DynamicOptions opts = {}) {
    try {
      SnapshotReader r(path, kDynStateFormatVersion);
      const std::uint64_t fingerprint = r.read_u64();
      if (fingerprint != dynamic_config_fingerprint(opts))
        return Unexpected(Error{ErrorCode::kCheckpointMismatch, Phase::kDynamic,
                                "dynamic state at " + path +
                                    " was saved under a different configuration"});
      DynamicCommunities<V> out(std::move(opts));
      out.base_.nv = static_cast<V>(r.read_i64());
      out.base_.bucket_begin = r.template read_i64_array<EdgeId>();
      out.base_.bucket_end = r.template read_i64_array<EdgeId>();
      out.base_.self_weight = r.template read_i64_array<Weight>();
      out.base_.volume = r.template read_i64_array<Weight>();
      out.base_.efirst = r.template read_i64_array<V>();
      out.base_.esecond = r.template read_i64_array<V>();
      out.base_.eweight = r.template read_i64_array<Weight>();
      out.base_.total_weight = r.read_i64();
      out.clustering_.community = r.template read_i64_array<V>();
      out.clustering_.num_communities = r.read_i64();
      out.clustering_.final_modularity = r.read_f64();
      out.clustering_.final_coverage = r.read_f64();
      out.stats_.batches = r.read_i64();
      out.stats_.updates_applied = r.read_i64();
      out.stats_.updates_effective = r.read_i64();
      out.stats_.rolled_back = r.read_i64();
      out.stats_.kept_prior = r.read_i64();
      out.stats_.full_refreshes = r.read_i64();
      out.stats_.apply_seconds = r.read_f64();
      out.stats_.recompute_seconds = r.read_f64();
      r.finish();
      return out;
    } catch (const std::exception& e) {
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }
  }

  /// One label change a committed batch made relative to the previous
  /// epoch, in the i64-widened on-disk encoding.
  struct LabelChange {
    std::int64_t vertex = 0;
    std::int64_t label = 0;
  };

  /// Replays one previously committed batch from the streaming
  /// service's write-ahead log WITHOUT re-running re-agglomeration.
  /// Parallel scoring accumulates floating-point atomics in
  /// nondeterministic order, so re-running it cannot promise the same
  /// labels; the graph mutation (sanitize + normalize + apply_delta) is
  /// deterministic by construction, and `changes` carries the exact
  /// label diff the original commit produced.  `labels_crc`
  /// (labels_checksum of the committed epoch's full label array) proves
  /// the restored membership is bit-for-bit the committed one.
  /// Transactional like apply_batch: any failure — including a checksum
  /// mismatch — leaves graph and clustering untouched.
  Expected<obs::DynamicBatchRow> replay_batch(const DeltaBatch<V>& batch,
                                              std::span<const LabelChange> changes,
                                              std::int64_t num_communities,
                                              double modularity, double coverage,
                                              std::uint32_t labels_crc) {
    obs::DynamicBatchRow row;
    row.batch = stats_.batches;
    row.deltas = batch.size();
    try {
      DeltaBatch<V> cleaned = batch;
      if (opts_.sanitize_input) {
        auto rep = sanitize_deltas(cleaned, base_.nv, opts_.sanitize);
        if (!rep.has_value()) return Unexpected(rep.error());
      }
      const auto normalized = normalize_deltas(cleaned);
      WallTimer apply_timer;
      DeltaApplied<V> applied =
          apply_delta(base_, std::span<const EdgeDelta<V>>(normalized));
      row.apply_seconds = apply_timer.seconds();
      row.effective = applied.report.effective;
      row.touched = static_cast<std::int64_t>(applied.touched.size());

      std::vector<V> labels = clustering_.community;
      for (const LabelChange& ch : changes) {
        if (ch.vertex < 0 || ch.vertex >= static_cast<std::int64_t>(labels.size()) ||
            ch.label < 0 || !fits_vertex_id<V>(ch.label))
          throw_error(ErrorCode::kIoFormat, Phase::kDynamic,
                      "WAL label change out of range: vertex " +
                          std::to_string(ch.vertex) + " -> " + std::to_string(ch.label));
        labels[static_cast<std::size_t>(ch.vertex)] = static_cast<V>(ch.label);
      }
      if (labels_checksum(std::span<const V>(labels)) != labels_crc)
        throw_error(ErrorCode::kCheckpointMismatch, Phase::kDynamic,
                    "replayed membership does not match the committed epoch checksum");

      // Commit point: nothing below throws.
      base_ = std::move(applied.graph);
      clustering_.community = std::move(labels);
      clustering_.num_communities = num_communities;
      clustering_.final_modularity = modularity;
      clustering_.final_coverage = coverage;
      community_cache_.clear();

      row.modularity = modularity;
      row.coverage = coverage;
      row.num_communities = num_communities;
      row.termination = "replayed";
      commit_stats(row);
      return row;
    } catch (const std::exception& e) {
      return Unexpected(error_from_exception(e, Phase::kDynamic));
    }
  }

 private:
  /// Bare constructor for load_state: adopts nothing, fields are filled
  /// by the loader.
  explicit DynamicCommunities(DynamicOptions opts) : opts_(std::move(opts)) {
    stats_.halo_hops = opts_.halo_hops;
  }

  /// Runs the quality/cadence-triggered full refresh when due.  Sits
  /// after the commit point, so it must not throw and must never turn a
  /// committed batch into a failure: a refresh that dies is swallowed
  /// (the trigger re-fires next batch), and a batch whose budget is
  /// already spent defers instead of blowing the deadline further.
  void maybe_refresh(obs::DynamicBatchRow& row, BudgetTracker& tracker) noexcept {
    try {
      ++batches_since_refresh_;
      const bool modularity_scorer =
          opts_.detect.scorer == ScorerKind::kModularity ||
          opts_.detect.scorer == ScorerKind::kResolutionModularity;
      if (modularity_scorer)
        reference_modularity_ =
            std::max(reference_modularity_, clustering_.final_modularity);
      bool due = opts_.refresh_every > 0 && batches_since_refresh_ >= opts_.refresh_every;
      if (!due && opts_.refresh_margin > 0.0 && modularity_scorer)
        due = reference_modularity_ - clustering_.final_modularity > opts_.refresh_margin;
      if (!due) return;
      if (opts_.batch_budget.limited() &&
          tracker.check_deadline(std::numeric_limits<int>::max()).has_value())
        return;
      WallTimer timer;
      if (opts_.refresh_plan.algorithm() == AlgorithmKind::kAgglomerative) {
        recompute();
      } else {
        // Plan-selected refresh backend (e.g. lp-sync for cheap ticks).
        clustering_ = detect_communities(base_, opts_.refresh_plan, opts_.detect);
        clustering_.compact_labels();
        community_cache_.clear();
        reference_modularity_ = clustering_.final_modularity;
        batches_since_refresh_ = 0;
      }
      row.refreshed = true;
      row.refresh_seconds = timer.seconds();
      row.refresh_algorithm = std::string(opts_.refresh_plan.name());
      ++stats_.full_refreshes;
      if (auto* c = obs::counter("dyn.refreshes")) c->add(1);
      if (auto* c = obs::counter("dyn.refresh." + opts_.refresh_plan.metric_token()))
        c->add(1);
    } catch (...) {
      // Committed batch stands; the refresh retries on a later batch.
    }
  }

  void fill_quality(obs::DynamicBatchRow& row) const {
    row.modularity = clustering_.final_modularity;
    row.coverage = clustering_.final_coverage;
    row.num_communities = clustering_.num_communities;
    row.termination = std::string(to_string(clustering_.reason));
    row.degraded = is_degraded(clustering_.reason);
  }

  void commit_stats(const obs::DynamicBatchRow& row) {
    ++stats_.batches;
    stats_.kept_prior += row.kept_prior ? 1 : 0;
    stats_.updates_applied += row.deltas;
    stats_.updates_effective += row.effective;
    stats_.apply_seconds += row.apply_seconds;
    stats_.recompute_seconds += row.recompute_seconds;
    stats_.batch_rows.push_back(row);
    if (auto* c = obs::counter("dyn.batches")) c->add(1);
    if (auto* c = obs::counter("dyn.updates")) c->add(row.deltas);
    if (auto* c = obs::counter("dyn.updates_effective")) c->add(row.effective);
    if (auto* c = obs::counter("dyn.unseated")) c->add(row.dirty);
  }

  void build_community_cache() const {
    const auto k = static_cast<std::size_t>(clustering_.num_communities);
    community_cache_.assign(k, CommunityStats{});
    const auto nv = static_cast<std::int64_t>(base_.nv);
    for (std::int64_t v = 0; v < nv; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto c = static_cast<std::size_t>(clustering_.community[vi]);
      auto& s = community_cache_[c];
      ++s.size;
      s.internal_weight += base_.self_weight[vi];
      s.volume += base_.volume[vi];
    }
    const EdgeId ne = base_.num_edges();
    for (EdgeId e = 0; e < ne; ++e) {
      const auto i = static_cast<std::size_t>(e);
      const auto cf = clustering_.community[static_cast<std::size_t>(base_.efirst[i])];
      const auto cs = clustering_.community[static_cast<std::size_t>(base_.esecond[i])];
      if (cf == cs)
        community_cache_[static_cast<std::size_t>(cf)].internal_weight += base_.eweight[i];
    }
  }

  CommunityGraph<V> base_;
  DynamicOptions opts_;
  Clustering<V> clustering_;
  obs::DynamicRunStats stats_;
  mutable std::vector<CommunityStats> community_cache_;
  double reference_modularity_ = -1.0;  // best score since the last refresh
  std::int64_t batches_since_refresh_ = 0;
  std::int64_t loaded_generation_ = -1;
};

}  // namespace commdet
