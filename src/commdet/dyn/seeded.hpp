// Seeded (warm-start) re-agglomeration for dynamic updates.
//
// After a batch mutates the base graph, most of the old clustering is
// still right: only the vertices incident to changed edges — plus a
// configurable k-hop halo around them — can plausibly want a different
// community (Lu & Halappanavar's perturbation argument).  So instead of
// re-running agglomeration from singletons, we unseat exactly the dirty
// vertices into fresh singleton communities, contract the surviving
// assignment into a warm community graph, and hand that to the standard
// score/match/contract loop (Staudt & Meyerhenke's prolonged coarsening
// in reverse: the survivors pre-pay most of the coarsening work).
//
// Quality metrics are preserved by construction: contraction keeps
// modularity/coverage of a labeling invariant, so the coarse result's
// quality is the composed fine labeling's quality.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "commdet/contract/label_contractor.hpp"
#include "commdet/core/clustering.hpp"
#include "commdet/core/detect.hpp"
#include "commdet/graph/community_graph.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

/// Expands `touched` by `hops` breadth-first steps over g's edges and
/// returns the dirty-vertex flags.  Each pass is one parallel sweep over
/// the edge array (the hashed-bucket layout has no per-vertex adjacency
/// to chase, but E-sized sweeps are exactly what the machine likes);
/// double-buffering keeps the radius exact.
template <VertexId V>
[[nodiscard]] std::vector<std::uint8_t> expand_halo(const CommunityGraph<V>& g,
                                                    std::span<const V> touched,
                                                    int hops) {
  std::vector<std::uint8_t> dirty(static_cast<std::size_t>(g.nv), 0);
  for (const V v : touched) dirty[static_cast<std::size_t>(v)] = 1;
  const EdgeId ne = g.num_edges();
  for (int h = 0; h < hops; ++h) {
    std::vector<std::uint8_t> next(dirty);
    parallel_for(ne, [&](std::int64_t e) {
      const auto i = static_cast<std::size_t>(e);
      const auto f = static_cast<std::size_t>(g.efirst[i]);
      const auto s = static_cast<std::size_t>(g.esecond[i]);
      if (dirty[f] != dirty[s]) {
        // Benign same-value race: every writer stores 1.
        next[dirty[f] ? s : f] = 1;
      }
    });
    dirty = std::move(next);
  }
  return dirty;
}

/// Result of adaptive halo expansion: the dirty flags plus the radius
/// that was actually used (for telemetry).
struct AdaptiveHalo {
  std::vector<std::uint8_t> dirty;
  int hops = 0;
};

/// Adaptive halo: grows the dirty region hop by hop until the dirty
/// frontier's cut-weight share — the weight crossing the dirty/clean
/// boundary divided by the dirty region's volume — drops to
/// `cut_threshold` or below, or `max_hops` is reached.  A perturbation
/// that is still strongly coupled to its surroundings (high share)
/// keeps expanding; one that has absorbed its neighborhood (low share)
/// stops early, so the unseated region tracks the perturbation size
/// instead of one global constant.  Each round is two parallel E/V
/// sweeps, the same access pattern as expand_halo.
template <VertexId V>
[[nodiscard]] AdaptiveHalo expand_halo_adaptive(const CommunityGraph<V>& g,
                                                std::span<const V> touched,
                                                double cut_threshold, int max_hops) {
  AdaptiveHalo out;
  out.dirty.assign(static_cast<std::size_t>(g.nv), 0);
  for (const V v : touched) out.dirty[static_cast<std::size_t>(v)] = 1;
  const EdgeId ne = g.num_edges();
  const auto nv = static_cast<std::int64_t>(g.nv);

  const auto cut_share = [&]() -> double {
    const Weight cut = parallel_sum<Weight>(static_cast<std::int64_t>(ne), [&](std::int64_t e) {
      const auto i = static_cast<std::size_t>(e);
      const auto f = static_cast<std::size_t>(g.efirst[i]);
      const auto s = static_cast<std::size_t>(g.esecond[i]);
      return out.dirty[f] != out.dirty[s] ? g.eweight[i] : Weight{0};
    });
    const Weight vol = parallel_sum<Weight>(nv, [&](std::int64_t v) {
      return out.dirty[static_cast<std::size_t>(v)] != 0
                 ? g.volume[static_cast<std::size_t>(v)]
                 : Weight{0};
    });
    if (vol <= 0) return cut > 0 ? 1.0 : 0.0;
    return static_cast<double>(cut) / static_cast<double>(vol);
  };

  while (out.hops < max_hops && cut_share() > cut_threshold) {
    std::vector<std::uint8_t> next(out.dirty);
    const bool grew = parallel_sum<std::int64_t>(static_cast<std::int64_t>(ne), [&](std::int64_t e) {
      const auto i = static_cast<std::size_t>(e);
      const auto f = static_cast<std::size_t>(g.efirst[i]);
      const auto s = static_cast<std::size_t>(g.esecond[i]);
      if (out.dirty[f] != out.dirty[s]) {
        // Benign same-value race: every writer stores 1.
        next[out.dirty[f] ? s : f] = 1;
        return std::int64_t{1};
      }
      return std::int64_t{0};
    }) > 0;
    out.dirty = std::move(next);
    ++out.hops;
    if (!grew) break;  // the dirty region is a whole component
  }
  return out;
}

/// Seed labels for the warm start: dirty vertices are unseated into
/// fresh singleton communities, everyone else keeps `base_labels`, and
/// the result is compacted to a dense [0, k).  Returns (labels, k).
template <VertexId V>
[[nodiscard]] std::pair<std::vector<V>, std::int64_t> seed_labels(
    std::span<const V> base_labels, std::span<const std::uint8_t> dirty) {
  const auto n = static_cast<std::int64_t>(base_labels.size());
  std::int64_t num = 0;
  for (std::int64_t i = 0; i < n; ++i)
    num = std::max<std::int64_t>(num, base_labels[static_cast<std::size_t>(i)] + 1);
  std::vector<V> labels(static_cast<std::size_t>(n));
  parallel_for(n, [&](std::int64_t i) {
    const auto ii = static_cast<std::size_t>(i);
    // Fresh labels are unique and above the existing space; compaction
    // squeezes the holes (communities emptied by unseating) right after.
    labels[ii] = dirty[ii] != 0 ? static_cast<V>(num + i) : base_labels[ii];
  });
  const std::int64_t k = compact_labels(labels);
  return {std::move(labels), k};
}

/// Contracts `base` by the dense seed labeling into the warm community
/// graph: every seed community becomes one vertex carrying its members'
/// collapsed internal weight as a self-loop.  Thin alias over the
/// hoisted label-keyed bucket-sort contraction (contract/
/// label_contractor.hpp) — the same kernel aggregates parallel Louvain
/// levels, so the warm-start path and the Louvain backend cannot drift
/// apart.
template <VertexId V>
[[nodiscard]] CommunityGraph<V> build_seeded_graph(const CommunityGraph<V>& base,
                                                   std::span<const V> seeds,
                                                   std::int64_t num_seeds) {
  return contract_by_labels(base, seeds, num_seeds);
}

/// Runs detection from the warm start and composes the coarse result
/// back onto the original vertices.  The returned Clustering is over
/// base's vertex space; level telemetry, termination, and quality come
/// from the warm run (quality is contraction-invariant, so they are the
/// composed labeling's values too).  The contraction dendrogram is not
/// composed — dynamic results do not populate `hierarchy`.
template <VertexId V>
[[nodiscard]] Clustering<V> seeded_agglomerate(const CommunityGraph<V>& base,
                                               std::span<const V> seeds,
                                               std::int64_t num_seeds,
                                               const DetectOptions& opts) {
  const CommunityGraph<V> warm = build_seeded_graph(base, seeds, num_seeds);
  Clustering<V> coarse = detect_communities(warm, opts);

  Clustering<V> out;
  out.community.resize(static_cast<std::size_t>(base.nv));
  parallel_for(static_cast<std::int64_t>(base.nv), [&](std::int64_t v) {
    const auto vi = static_cast<std::size_t>(v);
    out.community[vi] = coarse.community[static_cast<std::size_t>(seeds[vi])];
  });
  out.num_communities = coarse.num_communities;
  out.reason = coarse.reason;
  out.error = std::move(coarse.error);
  out.failed_level = std::move(coarse.failed_level);
  out.final_coverage = coarse.final_coverage;
  out.final_modularity = coarse.final_modularity;
  out.total_seconds = coarse.total_seconds;
  out.levels = std::move(coarse.levels);
  return out;
}

}  // namespace commdet
