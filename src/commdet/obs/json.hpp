// Minimal JSON emitter and syntax validator for the run-report writer.
//
// The report schema is small and flat enough that a dependency-free
// streaming writer suffices: containers push/pop an emission stack that
// inserts commas, keys are escaped, and non-finite doubles (which JSON
// cannot represent) degrade to null.  The validator is a strict
// recursive-descent syntax check used by tests and by consumers that
// want to reject a truncated report before parsing it for real.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace commdet::obs {

/// Canonical shortest-round-trip double formatting: %.17g, with
/// non-finite values degraded to "null" (JSON has no inf/nan).  Every
/// surface that prints a double a client might byte-compare — query
/// replies (serve/protocol.hpp), HEALTH JSON, the METRICS exposition,
/// run reports — must route through this one function so two views of
/// the same value can never drift in formatting.
[[nodiscard]] inline std::string format_f64(double d) {
  if (!std::isfinite(d)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

/// Streaming JSON writer.  Call sequence is the caller's contract:
/// inside an object alternate key()/value (or key()/begin_*), inside an
/// array just emit values.  Misuse shows up as invalid output, which
/// json_validate (and the tests) catch.
class JsonWriter {
 public:
  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

  void begin_object() {
    comma();
    out_ += '{';
    stack_.push_back(false);
  }
  void end_object() {
    out_ += '}';
    stack_.pop_back();
  }
  void begin_array() {
    comma();
    out_ += '[';
    stack_.push_back(false);
  }
  void end_array() {
    out_ += ']';
    stack_.pop_back();
  }

  /// Emits `"name":`; the next emission is its value.
  void key(std::string_view name) {
    comma();
    append_string(name);
    out_ += ':';
    pending_value_ = true;
  }

  void value(std::string_view s) {
    comma();
    append_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }
  void value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(double d) {
    comma();
    out_ += format_f64(d);
    // %.17g never emits a bare integer-looking token that JSON rejects,
    // but "1e+06" etc. are all valid JSON numbers already.
  }
  void null() {
    comma();
    out_ += "null";
  }

 private:
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value directly after a key: no comma
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "an element was emitted"
  bool pending_value_ = false;
};

namespace detail {

struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
};

inline bool validate_value(JsonCursor& c, int depth);

inline bool validate_string(JsonCursor& c) {
  if (!c.eat('"')) return false;
  while (c.pos < c.text.size()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.pos >= c.text.size()) return false;
      const char esc = c.text[c.pos++];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          if (c.pos >= c.text.size() ||
              !std::isxdigit(static_cast<unsigned char>(c.text[c.pos])))
            return false;
          ++c.pos;
        }
      } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
        return false;
      }
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      return false;
    }
  }
  return false;  // unterminated
}

inline bool validate_number(JsonCursor& c) {
  const std::size_t start = c.pos;
  if (c.pos < c.text.size() && c.text[c.pos] == '-') ++c.pos;
  const std::size_t int_start = c.pos;
  std::size_t digits = 0;
  while (c.pos < c.text.size() &&
         std::isdigit(static_cast<unsigned char>(c.text[c.pos]))) {
    ++c.pos;
    ++digits;
  }
  if (digits == 0) return false;
  if (digits > 1 && c.text[int_start] == '0') return false;  // no leading zeros
  if (c.pos < c.text.size() && c.text[c.pos] == '.') {
    ++c.pos;
    std::size_t frac = 0;
    while (c.pos < c.text.size() &&
           std::isdigit(static_cast<unsigned char>(c.text[c.pos]))) {
      ++c.pos;
      ++frac;
    }
    if (frac == 0) return false;
  }
  if (c.pos < c.text.size() && (c.text[c.pos] == 'e' || c.text[c.pos] == 'E')) {
    ++c.pos;
    if (c.pos < c.text.size() && (c.text[c.pos] == '+' || c.text[c.pos] == '-')) ++c.pos;
    std::size_t exp = 0;
    while (c.pos < c.text.size() &&
           std::isdigit(static_cast<unsigned char>(c.text[c.pos]))) {
      ++c.pos;
      ++exp;
    }
    if (exp == 0) return false;
  }
  return c.pos > start;
}

inline bool validate_literal(JsonCursor& c, std::string_view lit) {
  if (c.text.substr(c.pos, lit.size()) != lit) return false;
  c.pos += lit.size();
  return true;
}

inline bool validate_value(JsonCursor& c, int depth) {
  if (depth > 128) return false;
  c.skip_ws();
  if (c.pos >= c.text.size()) return false;
  const char ch = c.text[c.pos];
  if (ch == '{') {
    ++c.pos;
    if (c.eat('}')) return true;
    do {
      c.skip_ws();
      if (!validate_string(c)) return false;
      if (!c.eat(':')) return false;
      if (!validate_value(c, depth + 1)) return false;
    } while (c.eat(','));
    return c.eat('}');
  }
  if (ch == '[') {
    ++c.pos;
    if (c.eat(']')) return true;
    do {
      if (!validate_value(c, depth + 1)) return false;
    } while (c.eat(','));
    return c.eat(']');
  }
  if (ch == '"') return validate_string(c);
  if (ch == 't') return validate_literal(c, "true");
  if (ch == 'f') return validate_literal(c, "false");
  if (ch == 'n') return validate_literal(c, "null");
  return validate_number(c);
}

}  // namespace detail

/// Strict syntax check: exactly one JSON value plus trailing whitespace.
[[nodiscard]] inline bool json_validate(std::string_view text) {
  detail::JsonCursor c{text};
  if (!detail::validate_value(c, 0)) return false;
  c.skip_ws();
  return c.pos == text.size();
}

}  // namespace commdet::obs
