// Resource probes sampled at level boundaries and run edges: RSS
// high-water (the paper-scale memory question: does uk-2007-05 fit?),
// page faults, and context switches.
//
// Primary source is /proc/self/status (Linux, exact VmHWM); the portable
// fallback is getrusage(RUSAGE_SELF), available on every POSIX system.
// On platforms with neither, probes return zeros — callers treat 0 as
// "not measured" and the report writer still emits the field.
//
// These are milliseconds-scale syscalls, not hot-path operations: sample
// them at level boundaries, guarded by ScopedSpan::active() or an
// installed metrics registry.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define COMMDET_OBS_HAS_RUSAGE 1
#endif

namespace commdet::obs {

/// Point-in-time process resource usage.
struct ResourceSample {
  std::int64_t max_rss_bytes = 0;       // high-water resident set
  std::int64_t minor_faults = 0;        // page reclaims (no I/O)
  std::int64_t major_faults = 0;        // page faults (I/O)
  std::int64_t voluntary_ctx_switches = 0;
  std::int64_t involuntary_ctx_switches = 0;
};

/// RSS high-water in bytes: /proc/self/status VmHWM when available,
/// otherwise getrusage's ru_maxrss, otherwise 0.
[[nodiscard]] inline std::int64_t rss_high_water_bytes() noexcept {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::int64_t kb = -1;
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        std::sscanf(line + 6, "%lld", reinterpret_cast<long long*>(&kb));
        break;
      }
    }
    std::fclose(f);
    if (kb >= 0) return kb * 1024;
  }
#endif
#if defined(COMMDET_OBS_HAS_RUSAGE)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::int64_t>(ru.ru_maxrss);  // bytes on Darwin
#else
    return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // kilobytes elsewhere
#endif
  }
#endif
  return 0;
}

/// Samples the current process counters (zeros where unsupported).
[[nodiscard]] inline ResourceSample sample_resources() noexcept {
  ResourceSample s;
#if defined(COMMDET_OBS_HAS_RUSAGE)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    s.minor_faults = static_cast<std::int64_t>(ru.ru_minflt);
    s.major_faults = static_cast<std::int64_t>(ru.ru_majflt);
    s.voluntary_ctx_switches = static_cast<std::int64_t>(ru.ru_nvcsw);
    s.involuntary_ctx_switches = static_cast<std::int64_t>(ru.ru_nivcsw);
  }
#endif
  s.max_rss_bytes = rss_high_water_bytes();
  return s;
}

/// end - begin for the monotone counters; RSS keeps the end high-water.
[[nodiscard]] inline ResourceSample resource_delta(const ResourceSample& begin,
                                                   const ResourceSample& end) noexcept {
  ResourceSample d;
  d.max_rss_bytes = end.max_rss_bytes;
  d.minor_faults = end.minor_faults - begin.minor_faults;
  d.major_faults = end.major_faults - begin.major_faults;
  d.voluntary_ctx_switches = end.voluntary_ctx_switches - begin.voluntary_ctx_switches;
  d.involuntary_ctx_switches = end.involuntary_ctx_switches - begin.involuntary_ctx_switches;
  return d;
}

}  // namespace commdet::obs
