// Low-overhead metrics: cache-line-padded per-thread sharded counters
// and high-water gauges, merged on read.
//
// Hot loops (matcher claim arbitration, contraction scatter, scoring)
// count events by fetch-adding a thread-private shard — no shared cache
// line, no lock, no serialization.  Reads (report time) sum the shards.
// When no registry is installed, instrumentation sites hold null Counter
// pointers and skip the count with one predictable branch, keeping the
// disabled cost unmeasurable.
//
// Usage at an instrumentation site:
//
//   obs::Counter* conflicts = obs::counter("match.claim_conflicts");
//   ... inside the parallel loop ...
//   if (conflicts) conflicts->add(1);
//
// `obs::counter()` resolves the name once per kernel invocation (mutex
// on the registry map), never per iteration.
#pragma once

#include <omp.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "commdet/obs/histogram.hpp"

namespace commdet::obs {

// A fixed 64 rather than std::hardware_destructive_interference_size:
// the value is an ABI hazard GCC warns about, and every target we run on
// uses 64-byte lines.  Padding to 128 would only waste shard memory.
inline constexpr std::size_t kCacheLineBytes = 64;

namespace detail {

struct alignas(kCacheLineBytes) Shard {
  std::atomic<std::int64_t> value{0};
};

[[nodiscard]] inline std::size_t shard_count() noexcept {
  // Power of two >= the thread count so the slot mask is one AND; capped
  // to bound the memory of a registry with many metrics.
  std::size_t n = 1;
  const auto threads = static_cast<std::size_t>(omp_get_max_threads());
  while (n < threads && n < 256) n <<= 1;
  return n;
}

}  // namespace detail

/// Monotonic sharded counter.
class Counter {
 public:
  Counter() : shards_(detail::shard_count()), mask_(shards_.size() - 1) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Concurrency-safe from any thread, including inside OpenMP regions.
  void add(std::int64_t delta) noexcept {
    shards_[static_cast<std::size_t>(omp_get_thread_num()) & mask_].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merged value.  Safe concurrently with add(); the result is a sum of
  /// per-shard snapshots, exact once writers have quiesced.
  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::vector<detail::Shard> shards_;
  std::size_t mask_;
};

/// High-water gauge: record() keeps the per-shard maximum, value() merges
/// by max.  Initial value is 0 (suits sizes, byte counts, RSS).
class Gauge {
 public:
  Gauge() : shards_(detail::shard_count()), mask_(shards_.size() - 1) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void record(std::int64_t v) noexcept {
    auto& slot = shards_[static_cast<std::size_t>(omp_get_thread_num()) & mask_].value;
    std::int64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t best = 0;
    for (const auto& s : shards_) {
      const std::int64_t v = s.value.load(std::memory_order_relaxed);
      if (v > best) best = v;
    }
    return best;
  }

 private:
  std::vector<detail::Shard> shards_;
  std::size_t mask_;
};

/// Named metrics for one run.  Creation is mutex-protected and returns
/// stable references; the hot path never touches the map.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[std::string(name)];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  [[nodiscard]] Gauge& gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[std::string(name)];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }

  [[nodiscard]] Histogram& histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[std::string(name)];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
  }

  /// Merged snapshot of every scalar metric, sorted by name (counters
  /// and gauges share the namespace; pick distinct names).  Histograms
  /// are excluded — see snapshot_histograms().
  [[nodiscard]] std::map<std::string, std::int64_t> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, std::int64_t> out;
    for (const auto& [name, c] : counters_) out[name] = c->value();
    for (const auto& [name, g] : gauges_) out[name] = g->value();
    return out;
  }

  /// Typed snapshots for exposition formats that distinguish metric
  /// kinds (Prometheus TYPE lines).  snapshot() remains the union the
  /// run report consumes.
  [[nodiscard]] std::map<std::string, std::int64_t> snapshot_counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, std::int64_t> out;
    for (const auto& [name, c] : counters_) out[name] = c->value();
    return out;
  }

  [[nodiscard]] std::map<std::string, std::int64_t> snapshot_gauges() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, std::int64_t> out;
    for (const auto& [name, g] : gauges_) out[name] = g->value();
    return out;
  }

  [[nodiscard]] std::map<std::string, HistogramSnapshot> snapshot_histograms() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, HistogramSnapshot> out;
    for (const auto& [name, h] : histograms_) out[name] = h->snapshot();
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

namespace detail {

inline std::atomic<MetricsRegistry*>& metrics_slot() noexcept {
  static std::atomic<MetricsRegistry*> slot{nullptr};
  return slot;
}

}  // namespace detail

/// The installed registry, or nullptr (metrics disabled).
[[nodiscard]] inline MetricsRegistry* active_metrics() noexcept {
  return detail::metrics_slot().load(std::memory_order_relaxed);
}

/// Installs `m` process-wide (nullptr uninstalls); returns the previous.
inline MetricsRegistry* install_metrics(MetricsRegistry* m) noexcept {
  return detail::metrics_slot().exchange(m, std::memory_order_release);
}

/// RAII installation for the duration of a scope.
class MetricsSession {
 public:
  explicit MetricsSession(MetricsRegistry& m) noexcept : previous_(install_metrics(&m)) {}
  ~MetricsSession() { install_metrics(previous_); }
  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Resolves a counter against the installed registry; nullptr when
/// metrics are disabled.  Resolve once per kernel call, not per item.
[[nodiscard]] inline Counter* counter(std::string_view name) {
  MetricsRegistry* m = active_metrics();
  return m != nullptr ? &m->counter(name) : nullptr;
}

/// Resolves a gauge; nullptr when metrics are disabled.
[[nodiscard]] inline Gauge* gauge(std::string_view name) {
  MetricsRegistry* m = active_metrics();
  return m != nullptr ? &m->gauge(name) : nullptr;
}

/// Resolves a histogram; nullptr when metrics are disabled.
[[nodiscard]] inline Histogram* histogram(std::string_view name) {
  MetricsRegistry* m = active_metrics();
  return m != nullptr ? &m->histogram(name) : nullptr;
}

}  // namespace commdet::obs
