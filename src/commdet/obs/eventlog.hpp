// Bounded structured event log: one JSON object per line, size-rotated.
//
// Metrics answer "how much / how fast"; the event log answers "what
// happened and when".  Each event is a single JSONL line —
//
//   {"ts":1754640000.123,"type":"batch_commit","epoch":41,"deltas":128,...}
//
// — with a fixed prefix (ts: unix seconds as %.17g; type: event name;
// epoch: the membership epoch in force when the event fired) followed
// by event-specific fields.  Every line passes obs::json_validate, so
// the log is replayable by any JSON-lines reader and by our own strict
// validator in tests.
//
// The serve layer logs typed events at batch cadence (commit, rollback,
// full refresh, WAL rotation, checkpoint publish, follower shed or
// reconnect, slow query, promotion) — a handful of lines per second at
// most, so a single mutex-guarded append is fine; this is deliberately
// NOT a hot-path structure like Counter/Histogram.
//
// Rotation is by size: when the active file would exceed max_bytes, it
// shifts to <path>.1 (and .1 to .2, ...), keeping max_files files total.
// Appends are line-atomic per process (one write under the mutex) but a
// crash can still tear the final line; read_events() tolerates exactly
// that — an unterminated or json-invalid tail line is dropped, anything
// earlier must parse.
//
// Install discipline mirrors MetricsRegistry: a process-wide slot,
// obs::log_event(...) is a cheap no-op when nothing is installed.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <sys/time.h>

#include "commdet/obs/json.hpp"

namespace commdet::obs {

/// One extra field appended to an event line after ts/type/epoch.
struct EventField {
  std::string_view key;
  enum class Kind { kInt, kDouble, kString } kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string_view s;

  static EventField of(std::string_view key, std::int64_t v) {
    EventField f;
    f.key = key;
    f.kind = Kind::kInt;
    f.i = v;
    return f;
  }
  static EventField of(std::string_view key, double v) {
    EventField f;
    f.key = key;
    f.kind = Kind::kDouble;
    f.d = v;
    return f;
  }
  static EventField of(std::string_view key, std::string_view v) {
    EventField f;
    f.key = key;
    f.kind = Kind::kString;
    f.s = v;
    return f;
  }
};

struct EventLogOptions {
  std::string path;                       // active file; rotations are path.1..path.N
  std::uint64_t max_bytes = 4 << 20;      // rotate before exceeding this
  int max_files = 4;                      // active file + (max_files - 1) rotations
};

/// Append-only JSONL event sink with size rotation.  Thread-safe; one
/// mutex per append (events fire at batch cadence, not per delta).
class EventLog {
 public:
  explicit EventLog(EventLogOptions opts) : opts_(std::move(opts)) {
    if (opts_.max_files < 1) opts_.max_files = 1;
  }
  ~EventLog() { close_locked(); }
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event line; ts is stamped here (unix seconds).
  /// Returns false if the file cannot be opened or written (the event
  /// is dropped; telemetry must never take the service down).
  bool append(std::string_view type, std::int64_t epoch,
              std::initializer_list<EventField> fields = {}) {
    JsonWriter w;
    w.begin_object();
    w.key("ts");
    w.value(now_unix());
    w.key("type");
    w.value(type);
    w.key("epoch");
    w.value(epoch);
    for (const EventField& f : fields) {
      w.key(f.key);
      switch (f.kind) {
        case EventField::Kind::kInt: w.value(f.i); break;
        case EventField::Kind::kDouble: w.value(f.d); break;
        case EventField::Kind::kString: w.value(f.s); break;
      }
    }
    w.end_object();
    std::string line = w.take();
    line += '\n';

    std::lock_guard<std::mutex> lock(mu_);
    // Open before the rotation check so bytes_ reflects a pre-existing
    // file after restart (open seeks to the end to count it).
    if (file_ == nullptr && !open_locked()) return false;
    if (bytes_ > 0 && bytes_ + line.size() > opts_.max_bytes) {
      rotate_locked();
      if (!open_locked()) return false;
    }
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) return false;
    std::fflush(file_);  // events are for post-mortems; don't sit in stdio buffers
    bytes_ += line.size();
    appended_.fetch_add(1, std::memory_order_relaxed);
    last_unix_.store(now_unix(), std::memory_order_relaxed);
    return true;
  }

  /// Monotone cursor: events appended by this process so far.  Lets
  /// HEALTH report "how far has the log advanced" without reading it.
  [[nodiscard]] std::int64_t events_appended() const noexcept {
    return appended_.load(std::memory_order_relaxed);
  }

  /// Unix timestamp of the most recent append, or 0 if none yet.
  [[nodiscard]] double last_event_unix() const noexcept {
    return last_unix_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& path() const noexcept { return opts_.path; }

  [[nodiscard]] static double now_unix() noexcept {
    timeval tv{};
    gettimeofday(&tv, nullptr);
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
  }

 private:
  bool open_locked() {
    file_ = std::fopen(opts_.path.c_str(), "ab");
    if (file_ == nullptr) return false;
    // In append mode the initial stream position is unspecified until
    // the first write; seek explicitly so bytes_ counts existing data.
    std::fseek(file_, 0, SEEK_END);
    const long pos = std::ftell(file_);
    bytes_ = pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
    return true;
  }

  void close_locked() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  void rotate_locked() {
    close_locked();
    // Shift path.(N-1) -> dropped, ..., path.1 -> path.2, path -> path.1.
    std::remove((opts_.path + "." + std::to_string(opts_.max_files - 1)).c_str());
    for (int i = opts_.max_files - 1; i >= 2; --i) {
      std::rename((opts_.path + "." + std::to_string(i - 1)).c_str(),
                  (opts_.path + "." + std::to_string(i)).c_str());
    }
    if (opts_.max_files >= 2) {
      std::rename(opts_.path.c_str(), (opts_.path + ".1").c_str());
    } else {
      std::remove(opts_.path.c_str());  // max_files == 1: truncate in place
    }
    bytes_ = 0;
  }

  EventLogOptions opts_;
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::atomic<std::int64_t> appended_{0};
  std::atomic<double> last_unix_{0.0};
};

/// Reads one event-log file, tolerating a torn tail: returns every
/// complete, json-valid line; a final line that is unterminated or
/// fails validation (a crash mid-append) is silently dropped.  Any
/// invalid line *before* the tail is real corruption and stops the read
/// there (everything already returned is still good).
[[nodiscard]] inline std::vector<std::string> read_events(const std::string& path) {
  std::vector<std::string> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  std::fclose(f);

  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) break;  // unterminated tail: torn, drop
    std::string_view line(data.data() + pos, nl - pos);
    if (!json_validate(line)) {
      // Torn only if nothing follows; mid-file garbage ends the read.
      break;
    }
    out.emplace_back(line);
    pos = nl + 1;
  }
  return out;
}

namespace detail {

inline std::atomic<EventLog*>& eventlog_slot() noexcept {
  static std::atomic<EventLog*> slot{nullptr};
  return slot;
}

}  // namespace detail

/// The installed event log, or nullptr (event logging disabled).
[[nodiscard]] inline EventLog* active_eventlog() noexcept {
  return detail::eventlog_slot().load(std::memory_order_relaxed);
}

/// Installs `log` process-wide (nullptr uninstalls); returns the previous.
inline EventLog* install_eventlog(EventLog* log) noexcept {
  return detail::eventlog_slot().exchange(log, std::memory_order_release);
}

/// Logs one event against the installed log; no-op when disabled.
inline void log_event(std::string_view type, std::int64_t epoch,
                      std::initializer_list<EventField> fields = {}) {
  EventLog* log = active_eventlog();
  if (log != nullptr) log->append(type, epoch, fields);
}

/// RAII installation for the duration of a scope.
class EventLogSession {
 public:
  explicit EventLogSession(EventLog& log) noexcept : previous_(install_eventlog(&log)) {}
  ~EventLogSession() { install_eventlog(previous_); }
  EventLogSession(const EventLogSession&) = delete;
  EventLogSession& operator=(const EventLogSession&) = delete;

 private:
  EventLog* previous_;
};

}  // namespace commdet::obs
