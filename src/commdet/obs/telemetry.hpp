// TelemetryHub: on-demand snapshots of the process-wide metrics
// registry, rendered as a versioned JSON object or Prometheus text
// exposition (text/plain; version 0.0.4).
//
// The PR-2 obs/ layer dumps counters into an end-of-run report — fine
// for a bench, useless for a daemon that never ends.  The hub is the
// daemon-shaped read path: collect() merges every counter, gauge, and
// histogram shard *now*, the caller layers in live values the registry
// cannot hold (queue depth, per-link lag — registry Gauges are
// high-water only), and the result renders to either format.  Both
// renderings format doubles through obs::format_f64, so METRICS and
// HEALTH can never drift on the same value.
//
// Naming: registry names are dotted ("serve.batch.apply_us") and may
// carry a literal Prometheus label suffix ("serve.repl.lag_records
// {endpoint=\"a.sock\"}").  Exposition sanitizes the pre-label part —
// '.' and any other non-[a-zA-Z0-9_] become '_' — and prefixes
// "commdet_"; counters additionally get "_total" per convention.
// Histogram names end in a unit suffix ("_us"): buckets are emitted as
// cumulative <name>_bucket{le="..."} series (trailing empty buckets
// trimmed, le="+Inf" always last) plus <name>_sum / <name>_count.
//
// JSON schema ("commdet-telemetry" version 1):
//   {"schema":"commdet-telemetry","version":1,"unix_time":...,
//    "counters":{name:int,...},"gauges":{name:num,...},
//    "histograms":{name:{"count":N,"sum":N,"mean":x,"p50":N,"p90":N,
//                        "p99":N,"max":N,"buckets":[[le,count],...]},...},
//    "events":{"appended":N,"last_unix":x}|null}
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "commdet/obs/eventlog.hpp"
#include "commdet/obs/histogram.hpp"
#include "commdet/obs/json.hpp"
#include "commdet/obs/metrics.hpp"

namespace commdet::obs {

inline constexpr std::string_view kTelemetrySchema = "commdet-telemetry";
inline constexpr int kTelemetryVersion = 1;

/// One merged view of everything observable at a point in time.  The
/// registry maps come from collect(); services append live gauges
/// (scrape-time values the high-water registry Gauge cannot express)
/// and doubles (rates, lag seconds) before rendering.
struct TelemetrySnapshot {
  double unix_time = 0.0;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;        // high-water + live int gauges
  std::map<std::string, double> gauges_f64;          // live float gauges (rates, seconds)
  std::map<std::string, HistogramSnapshot> histograms;
  std::int64_t events_appended = -1;                 // -1: no event log installed
  double last_event_unix = 0.0;

  void set_gauge(std::string name, std::int64_t v) { gauges[std::move(name)] = v; }
  void set_gauge(std::string name, double v) { gauges_f64[std::move(name)] = v; }
};

namespace detail {

/// Splits "name {label=\"x\"}" into its metric name and label suffix;
/// sanitizes the name part to Prometheus [a-zA-Z_][a-zA-Z0-9_]* with a
/// "commdet_" prefix.
struct PromName {
  std::string name;    // sanitized, prefixed
  std::string labels;  // "" or "{...}" verbatim from the registry name
};

[[nodiscard]] inline PromName prom_name(std::string_view raw) {
  PromName out;
  std::string_view base = raw;
  const std::size_t brace = raw.find('{');
  if (brace != std::string_view::npos) {
    base = raw.substr(0, brace);
    out.labels = std::string(raw.substr(brace));
  }
  while (!base.empty() && base.back() == ' ') base.remove_suffix(1);
  out.name = "commdet_";
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.name += ok ? c : '_';
  }
  return out;
}

inline void prom_type_line(std::string& out, const std::string& family,
                           std::string_view type, std::string& last_family) {
  if (family == last_family) return;  // one TYPE line per family
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
  last_family = family;
}

}  // namespace detail

/// Renders a snapshot as Prometheus text exposition format 0.0.4.
[[nodiscard]] inline std::string to_prometheus(const TelemetrySnapshot& snap) {
  std::string out;
  std::string last_family;

  for (const auto& [raw, v] : snap.counters) {
    const auto pn = detail::prom_name(raw);
    const std::string family = pn.name + "_total";
    detail::prom_type_line(out, family, "counter", last_family);
    out += family + pn.labels + ' ' + std::to_string(v) + '\n';
  }
  for (const auto& [raw, v] : snap.gauges) {
    const auto pn = detail::prom_name(raw);
    detail::prom_type_line(out, pn.name, "gauge", last_family);
    out += pn.name + pn.labels + ' ' + std::to_string(v) + '\n';
  }
  for (const auto& [raw, v] : snap.gauges_f64) {
    const auto pn = detail::prom_name(raw);
    detail::prom_type_line(out, pn.name, "gauge", last_family);
    out += pn.name + pn.labels + ' ' + format_f64(v) + '\n';
  }
  for (const auto& [raw, h] : snap.histograms) {
    const auto pn = detail::prom_name(raw);
    detail::prom_type_line(out, pn.name, "histogram", last_family);
    // Highest non-empty bucket; everything above collapses into +Inf.
    int top = -1;
    for (int i = 0; i < kHistogramBuckets; ++i)
      if (h.buckets[static_cast<std::size_t>(i)] > 0) top = i;
    std::int64_t cum = 0;
    for (int i = 0; i <= top && i < kHistogramBuckets - 1; ++i) {
      cum += h.buckets[static_cast<std::size_t>(i)];
      std::string labels = pn.labels.empty()
                               ? "{le=\"" + std::to_string(HistogramSnapshot::bucket_upper(i)) + "\"}"
                               : pn.labels.substr(0, pn.labels.size() - 1) + ",le=\"" +
                                     std::to_string(HistogramSnapshot::bucket_upper(i)) + "\"}";
      out += pn.name + "_bucket" + labels + ' ' + std::to_string(cum) + '\n';
    }
    const std::string inf_labels =
        pn.labels.empty() ? std::string("{le=\"+Inf\"}")
                          : pn.labels.substr(0, pn.labels.size() - 1) + ",le=\"+Inf\"}";
    out += pn.name + "_bucket" + inf_labels + ' ' + std::to_string(h.count()) + '\n';
    out += pn.name + "_sum" + pn.labels + ' ' + std::to_string(h.sum) + '\n';
    out += pn.name + "_count" + pn.labels + ' ' + std::to_string(h.count()) + '\n';
  }

  {
    std::string family = "commdet_unix_time_seconds";
    detail::prom_type_line(out, family, "gauge", last_family);
    out += family + ' ' + format_f64(snap.unix_time) + '\n';
  }
  if (snap.events_appended >= 0) {
    std::string family = "commdet_events_appended_total";
    detail::prom_type_line(out, family, "counter", last_family);
    out += family + ' ' + std::to_string(snap.events_appended) + '\n';
  }
  return out;
}

/// Emits the "commdet-telemetry" v1 object into an in-progress writer
/// (shared by to_json and the run report's additive "telemetry" key).
inline void write_telemetry(JsonWriter& w, const TelemetrySnapshot& snap) {
  w.begin_object();
  w.key("schema");
  w.value(kTelemetrySchema);
  w.key("version");
  w.value(kTelemetryVersion);
  w.key("unix_time");
  w.value(snap.unix_time);

  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : snap.counters) {
    w.key(name);
    w.value(v);
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : snap.gauges) {
    w.key(name);
    w.value(v);
  }
  for (const auto& [name, v] : snap.gauges_f64) {
    w.key(name);
    w.value(v);
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(h.count());
    w.key("sum");
    w.value(h.sum);
    w.key("mean");
    w.value(h.mean());
    w.key("p50");
    w.value(h.percentile(0.50));
    w.key("p90");
    w.value(h.percentile(0.90));
    w.key("p99");
    w.value(h.percentile(0.99));
    w.key("max");
    w.value(h.percentile(1.0));
    w.key("buckets");
    w.begin_array();
    std::int64_t cum = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[static_cast<std::size_t>(i)] == 0) continue;
      cum += h.buckets[static_cast<std::size_t>(i)];
      w.begin_array();
      w.value(HistogramSnapshot::bucket_upper(i));
      w.value(cum);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("events");
  if (snap.events_appended >= 0) {
    w.begin_object();
    w.key("appended");
    w.value(snap.events_appended);
    w.key("last_unix");
    w.value(snap.last_event_unix);
    w.end_object();
  } else {
    w.null();
  }
  w.end_object();
}

/// Renders a snapshot as one "commdet-telemetry" v1 JSON object
/// (single line; passes json_validate).
[[nodiscard]] inline std::string to_json(const TelemetrySnapshot& snap) {
  JsonWriter w;
  write_telemetry(w, snap);
  return w.take();
}

/// Snapshot factory over the installed (or an explicit) registry plus
/// the installed event log.  Stateless beyond its sources — services
/// call collect(), add their live gauges, then render.
class TelemetryHub {
 public:
  TelemetryHub() = default;
  explicit TelemetryHub(MetricsRegistry* registry) : registry_(registry) {}

  [[nodiscard]] TelemetrySnapshot collect() const {
    TelemetrySnapshot snap;
    snap.unix_time = EventLog::now_unix();
    MetricsRegistry* reg = registry_ != nullptr ? registry_ : active_metrics();
    if (reg != nullptr) {
      snap.counters = reg->snapshot_counters();
      snap.gauges = reg->snapshot_gauges();
      snap.histograms = reg->snapshot_histograms();
    }
    if (EventLog* log = active_eventlog(); log != nullptr) {
      snap.events_appended = log->events_appended();
      snap.last_event_unix = log->last_event_unix();
    }
    return snap;
  }

 private:
  MetricsRegistry* registry_ = nullptr;  // nullptr: follow the installed slot
};

}  // namespace commdet::obs
