// Machine-readable run reports: one versioned JSON document per run
// carrying the trace, merged metrics, per-level stats, platform info,
// resource high-waters, and the termination/degradation record — the
// format the BENCH_*.json trajectory and reproduce_paper.sh consume.
//
// Schema (version 1, "commdet-run-report"):
//
//   {
//     "schema": "commdet-run-report",
//     "schema_version": 1,
//     "kind": "detection" | "bench",
//     "threads": <omp max threads>,
//     "info": { <free-form string pairs: graph name, scorer, flags> },
//     "platform": { cpu_model, logical_cpus, omp_max_threads, cpu_mhz,
//                   total_ram_bytes, openmp_version } | null,
//     "graph": { num_vertices, num_edges, total_weight, self_loop_weight,
//                min_degree, max_degree, mean_degree, isolated_vertices,
//                degree_distribution: <distribution> | null } | null,
//     "result": { num_communities, modularity, coverage, total_seconds,
//                 num_levels, contraction_fraction, termination, degraded,
//                 error: {code, phase, detail} | null,
//                 checkpoint: { directory, last_generation,
//                               checkpoints_written, checkpoint_failures,
//                               resumed, resumed_from, resumed_generation,
//                               resumed_level,
//                               resumed_elapsed_seconds } | null,
//                 algorithm: { name, iterations, converged,
//                              refine } | null,
//                                // which backend produced the result
//                                // (added within schema version 1)
//                 community_size_distribution: <distribution> | null,
//                 levels: [ <level> ... ],
//                 failed_level: <level> | null },
//     "dynamic": { batches, updates_applied, updates_effective,
//                  rolled_back, halo_hops, apply_seconds,
//                  recompute_seconds, updates_per_second,
//                  batch_rows: [ { batch, deltas, effective, touched,
//                                  dirty, seed_communities, apply_seconds,
//                                  recompute_seconds, modularity, coverage,
//                                  num_communities, termination, degraded,
//                                  refresh_algorithm } ... ] } | null,
//                                // present only for --updates runs
//                                // (added within schema version 1)
//     "metrics": { "<name>": <int64>, ... },
//     "telemetry": <commdet-telemetry v1 object, see telemetry.hpp> | null,
//                                // present for live-telemetry runs
//                                // (added within schema version 1)
//     "resources": { max_rss_bytes, minor_faults, major_faults,
//                    voluntary_ctx_switches, involuntary_ctx_switches },
//     "trace": [ { id, parent, name, start_seconds, end_seconds, threads,
//                  error, attrs: {..} } ... ],
//     "rows": [ { series, threads, trial, seconds, values: {..} } ... ]
//                                // bench reports only; key order in the
//                                // document is not part of the schema
//   }
//
//   <level>: { level, nv_before, ne_before, positive_edges, max_score,
//              pairs_matched, match_sweeps, nv_after, ne_after, coverage,
//              modularity, score_seconds, match_seconds, contract_seconds }
//   <distribution>: { count, min, max, mean, p50, p90, p99,
//                     log2_buckets: [..] }
//
// Additions within version 1 are backward compatible (new keys only);
// renames or removals bump schema_version.  obs_test pins the keys.
#pragma once

#include <omp.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "commdet/core/clustering.hpp"
#include "commdet/graph/stats.hpp"
#include "commdet/obs/json.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/telemetry.hpp"
#include "commdet/obs/probes.hpp"
#include "commdet/obs/trace.hpp"
#include "commdet/platform/platform_info.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/util/types.hpp"

namespace commdet::obs {

inline constexpr std::string_view kRunReportSchema = "commdet-run-report";
inline constexpr int kRunReportSchemaVersion = 1;

/// One absorbed (or attempted) dynamic batch: sizes of the update and
/// its blast radius, phase timings, and the quality the re-agglomerated
/// clustering landed on.  Pure data, so the dyn/ subsystem can fill it
/// without the report layer depending on dyn/.
struct DynamicBatchRow {
  std::int64_t batch = 0;             // 0-based batch index
  std::int64_t deltas = 0;            // raw deltas submitted
  std::int64_t effective = 0;         // deltas that changed the graph
  std::int64_t touched = 0;           // vertices incident to a change
  std::int64_t dirty = 0;             // touched + k-hop halo (unseated)
  std::int64_t seed_communities = 0;  // warm-start community count
  double apply_seconds = 0.0;
  double recompute_seconds = 0.0;
  double modularity = 0.0;
  double coverage = 0.0;
  std::int64_t num_communities = 0;
  std::string termination;            // TerminationReason of the re-agglomeration
  bool degraded = false;
  bool kept_prior = false;  // re-agglomeration lost to the prior labels
  int halo_hops_used = 0;   // actual radius (adaptive halo picks per batch)
  bool refreshed = false;   // a quality-triggered full recompute followed
  double refresh_seconds = 0.0;
  std::string refresh_algorithm;  // DetectPlan name of that refresh; "" if none
};

/// Aggregate dynamic-update telemetry for one run (the "dynamic" run
/// report object).
struct DynamicRunStats {
  std::int64_t batches = 0;          // batches committed
  std::int64_t updates_applied = 0;  // raw deltas across committed batches
  std::int64_t updates_effective = 0;
  std::int64_t rolled_back = 0;      // failed batches (state unchanged)
  std::int64_t kept_prior = 0;       // batches where the prior labels won
  std::int64_t full_refreshes = 0;   // quality/cadence-triggered recomputes
  int halo_hops = 0;                 // configured radius (-1 = adaptive)
  double apply_seconds = 0.0;      // total graph-merge time
  double recompute_seconds = 0.0;  // total seeded re-agglomeration time
  std::vector<DynamicBatchRow> batch_rows;

  [[nodiscard]] double updates_per_second() const noexcept {
    const double t = apply_seconds + recompute_seconds;
    return t > 0.0 ? static_cast<double>(updates_applied) / t : 0.0;
  }
};

/// Optional report sections; null pointers are emitted as JSON null (or
/// an empty object for metrics/info), so every consumer sees every key.
struct RunReportInputs {
  const PlatformInfo* platform = nullptr;
  const GraphStats* graph = nullptr;
  const DistributionSummary* degree = nullptr;           // of the input graph
  const DistributionSummary* community_sizes = nullptr;  // of the final labels
  const Trace* trace = nullptr;
  const MetricsRegistry* metrics = nullptr;
  const ResourceSample* resources = nullptr;
  const DynamicRunStats* dynamic = nullptr;              // --updates runs only
  const TelemetrySnapshot* telemetry = nullptr;          // live-telemetry runs only
  std::vector<std::pair<std::string, std::string>> info;  // free-form strings
};

namespace detail {

inline void write_distribution(JsonWriter& w, const DistributionSummary& d) {
  w.begin_object();
  w.key("count");
  w.value(d.count);
  w.key("min");
  w.value(d.min);
  w.key("max");
  w.value(d.max);
  w.key("mean");
  w.value(d.mean);
  w.key("p50");
  w.value(d.p50);
  w.key("p90");
  w.value(d.p90);
  w.key("p99");
  w.value(d.p99);
  w.key("log2_buckets");
  w.begin_array();
  for (const auto b : d.log2_buckets) w.value(b);
  w.end_array();
  w.end_object();
}

inline void write_level(JsonWriter& w, const LevelStats& l) {
  w.begin_object();
  w.key("level");
  w.value(l.level);
  w.key("nv_before");
  w.value(l.nv_before);
  w.key("ne_before");
  w.value(static_cast<std::int64_t>(l.ne_before));
  w.key("positive_edges");
  w.value(static_cast<std::int64_t>(l.positive_edges));
  w.key("max_score");
  w.value(l.max_score);
  w.key("pairs_matched");
  w.value(l.pairs_matched);
  w.key("match_sweeps");
  w.value(l.match_sweeps);
  w.key("nv_after");
  w.value(l.nv_after);
  w.key("ne_after");
  w.value(static_cast<std::int64_t>(l.ne_after));
  w.key("coverage");
  w.value(l.coverage);
  w.key("modularity");
  w.value(l.modularity);
  w.key("score_seconds");
  w.value(l.score_seconds);
  w.key("match_seconds");
  w.value(l.match_seconds);
  w.key("contract_seconds");
  w.value(l.contract_seconds);
  w.end_object();
}

inline void write_platform(JsonWriter& w, const PlatformInfo* p) {
  if (p == nullptr) {
    w.null();
    return;
  }
  w.begin_object();
  w.key("cpu_model");
  w.value(p->cpu_model);
  w.key("logical_cpus");
  w.value(p->logical_cpus);
  w.key("omp_max_threads");
  w.value(p->omp_max_threads);
  w.key("cpu_mhz");
  w.value(p->cpu_mhz);
  w.key("total_ram_bytes");
  w.value(p->total_ram_bytes);
  w.key("openmp_version");
  w.value(p->openmp_version);
  w.end_object();
}

inline void write_resources(JsonWriter& w, const ResourceSample& r) {
  w.begin_object();
  w.key("max_rss_bytes");
  w.value(r.max_rss_bytes);
  w.key("minor_faults");
  w.value(r.minor_faults);
  w.key("major_faults");
  w.value(r.major_faults);
  w.key("voluntary_ctx_switches");
  w.value(r.voluntary_ctx_switches);
  w.key("involuntary_ctx_switches");
  w.value(r.involuntary_ctx_switches);
  w.end_object();
}

inline void write_trace(JsonWriter& w, const Trace& trace) {
  w.begin_array();
  for (const auto& s : trace.spans()) {
    w.begin_object();
    w.key("id");
    w.value(static_cast<std::int64_t>(s.id));
    w.key("parent");
    w.value(static_cast<std::int64_t>(s.parent));
    w.key("name");
    w.value(s.name);
    w.key("start_seconds");
    w.value(s.start_seconds);
    w.key("end_seconds");
    w.value(s.end_seconds);
    w.key("threads");
    w.value(s.threads);
    w.key("error");
    w.value(s.error);
    w.key("attrs");
    w.begin_object();
    for (const auto& a : s.attrs) {
      w.key(a.key);
      if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
        w.value(*i);
      } else if (const auto* d = std::get_if<double>(&a.value)) {
        w.value(*d);
      } else {
        w.value(std::get<std::string>(a.value));
      }
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

inline void write_checkpoint(JsonWriter& w, const CheckpointProvenance& p) {
  w.begin_object();
  w.key("directory");
  w.value(p.directory);
  w.key("last_generation");
  w.value(p.last_generation);
  w.key("checkpoints_written");
  w.value(p.checkpoints_written);
  w.key("checkpoint_failures");
  w.value(p.checkpoint_failures);
  w.key("resumed");
  w.value(!p.resumed_from.empty());
  w.key("resumed_from");
  w.value(p.resumed_from);
  w.key("resumed_generation");
  w.value(p.resumed_generation);
  w.key("resumed_level");
  w.value(p.resumed_level);
  w.key("resumed_elapsed_seconds");
  w.value(p.resumed_elapsed_seconds);
  w.end_object();
}

inline void write_dynamic(JsonWriter& w, const DynamicRunStats* d) {
  if (d == nullptr) {
    w.null();
    return;
  }
  w.begin_object();
  w.key("batches");
  w.value(d->batches);
  w.key("updates_applied");
  w.value(d->updates_applied);
  w.key("updates_effective");
  w.value(d->updates_effective);
  w.key("rolled_back");
  w.value(d->rolled_back);
  w.key("kept_prior");
  w.value(d->kept_prior);
  w.key("full_refreshes");
  w.value(d->full_refreshes);
  w.key("halo_hops");
  w.value(d->halo_hops);
  w.key("apply_seconds");
  w.value(d->apply_seconds);
  w.key("recompute_seconds");
  w.value(d->recompute_seconds);
  w.key("updates_per_second");
  w.value(d->updates_per_second());
  w.key("batch_rows");
  w.begin_array();
  for (const auto& r : d->batch_rows) {
    w.begin_object();
    w.key("batch");
    w.value(r.batch);
    w.key("deltas");
    w.value(r.deltas);
    w.key("effective");
    w.value(r.effective);
    w.key("touched");
    w.value(r.touched);
    w.key("dirty");
    w.value(r.dirty);
    w.key("seed_communities");
    w.value(r.seed_communities);
    w.key("apply_seconds");
    w.value(r.apply_seconds);
    w.key("recompute_seconds");
    w.value(r.recompute_seconds);
    w.key("modularity");
    w.value(r.modularity);
    w.key("coverage");
    w.value(r.coverage);
    w.key("num_communities");
    w.value(r.num_communities);
    w.key("termination");
    w.value(r.termination);
    w.key("degraded");
    w.value(r.degraded);
    w.key("kept_prior");
    w.value(r.kept_prior);
    w.key("halo_hops_used");
    w.value(r.halo_hops_used);
    w.key("refreshed");
    w.value(r.refreshed);
    w.key("refresh_seconds");
    w.value(r.refresh_seconds);
    w.key("refresh_algorithm");
    w.value(r.refresh_algorithm);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

inline void write_error(JsonWriter& w, const Error& e) {
  w.begin_object();
  w.key("code");
  w.value(to_string(e.code));
  w.key("phase");
  w.value(to_string(e.phase));
  w.key("detail");
  w.value(e.detail);
  w.end_object();
}

/// Shared envelope head: callers continue the open top-level object.
inline void begin_report(JsonWriter& w, std::string_view kind,
                         const RunReportInputs& in) {
  w.begin_object();
  w.key("schema");
  w.value(kRunReportSchema);
  w.key("schema_version");
  w.value(kRunReportSchemaVersion);
  w.key("kind");
  w.value(kind);
  w.key("threads");
  w.value(omp_get_max_threads());
  w.key("info");
  w.begin_object();
  for (const auto& [k, v] : in.info) {
    w.key(k);
    w.value(v);
  }
  w.end_object();
  w.key("platform");
  write_platform(w, in.platform);
}

/// Shared envelope tail: metrics, telemetry, resources, trace; closes
/// the object.
inline void end_report(JsonWriter& w, const RunReportInputs& in) {
  w.key("metrics");
  w.begin_object();
  if (in.metrics != nullptr) {
    for (const auto& [name, value] : in.metrics->snapshot()) {
      w.key(name);
      w.value(value);
    }
  }
  w.end_object();
  // Additive in v1: the full "commdet-telemetry" object for runs that
  // collected live telemetry (histograms, live gauges, event cursor).
  w.key("telemetry");
  if (in.telemetry != nullptr) {
    write_telemetry(w, *in.telemetry);
  } else {
    w.null();
  }
  w.key("resources");
  if (in.resources != nullptr) {
    write_resources(w, *in.resources);
  } else {
    const ResourceSample now = sample_resources();
    write_resources(w, now);
  }
  w.key("trace");
  if (in.trace != nullptr) {
    write_trace(w, *in.trace);
  } else {
    w.begin_array();
    w.end_array();
  }
  w.end_object();
}

}  // namespace detail

/// Serializes one detection run into the versioned report document.
template <VertexId V>
[[nodiscard]] std::string run_report_json(const Clustering<V>& c,
                                          const RunReportInputs& in = {}) {
  JsonWriter w;
  detail::begin_report(w, "detection", in);

  w.key("graph");
  if (in.graph != nullptr) {
    w.begin_object();
    w.key("num_vertices");
    w.value(in.graph->num_vertices);
    w.key("num_edges");
    w.value(in.graph->num_edges);
    w.key("total_weight");
    w.value(static_cast<std::int64_t>(in.graph->total_weight));
    w.key("self_loop_weight");
    w.value(static_cast<std::int64_t>(in.graph->self_loop_weight));
    w.key("min_degree");
    w.value(in.graph->min_degree);
    w.key("max_degree");
    w.value(in.graph->max_degree);
    w.key("mean_degree");
    w.value(in.graph->mean_degree);
    w.key("isolated_vertices");
    w.value(in.graph->isolated_vertices);
    w.key("degree_distribution");
    if (in.degree != nullptr) {
      detail::write_distribution(w, *in.degree);
    } else {
      w.null();
    }
    w.end_object();
  } else {
    w.null();
  }

  w.key("result");
  w.begin_object();
  w.key("num_communities");
  w.value(c.num_communities);
  w.key("modularity");
  w.value(c.final_modularity);
  w.key("coverage");
  w.value(c.final_coverage);
  w.key("total_seconds");
  w.value(c.total_seconds);
  w.key("num_levels");
  w.value(c.num_levels());
  w.key("contraction_fraction");
  w.value(c.contraction_fraction());
  w.key("termination");
  w.value(to_string(c.reason));
  w.key("degraded");
  w.value(is_degraded(c.reason));
  w.key("error");
  if (c.error.has_value()) {
    detail::write_error(w, *c.error);
  } else {
    w.null();
  }
  w.key("checkpoint");
  if (c.checkpoint.has_value()) {
    detail::write_checkpoint(w, *c.checkpoint);
  } else {
    w.null();
  }
  // Additive in v1: which backend produced the result.
  w.key("algorithm");
  if (c.algorithm.has_value()) {
    w.begin_object();
    w.key("name");
    w.value(c.algorithm->name);
    w.key("iterations");
    w.value(c.algorithm->iterations);
    w.key("converged");
    w.value(c.algorithm->converged);
    w.key("refine");
    w.value(c.algorithm->refine);
    w.end_object();
  } else {
    w.null();
  }
  w.key("community_size_distribution");
  if (in.community_sizes != nullptr) {
    detail::write_distribution(w, *in.community_sizes);
  } else {
    w.null();
  }
  w.key("levels");
  w.begin_array();
  for (const auto& l : c.levels) detail::write_level(w, l);
  w.end_array();
  w.key("failed_level");
  if (c.failed_level.has_value()) {
    detail::write_level(w, *c.failed_level);
  } else {
    w.null();
  }
  w.end_object();

  w.key("dynamic");
  detail::write_dynamic(w, in.dynamic);

  detail::end_report(w, in);
  return w.take();
}

/// Serializes one DynamicRunStats as a standalone JSON object — exactly
/// the run report's "dynamic" section.  The streaming service's STATS
/// verb answers with this.
[[nodiscard]] inline std::string dynamic_stats_json(const DynamicRunStats& d) {
  JsonWriter w;
  detail::write_dynamic(w, &d);
  return w.take();
}

/// One benchmark measurement: a (series, threads, trial) point with its
/// wall time and any extra named values (speedup, modularity, ...).
struct BenchRow {
  std::string series;
  int threads = 0;
  int trial = 0;
  double seconds = 0.0;
  std::vector<std::pair<std::string, double>> values;
};

/// Serializes a benchmark run into the same versioned envelope as the
/// detection report ("kind": "bench"); graph/result are null and the
/// measurements land in "rows".
[[nodiscard]] inline std::string bench_report_json(const std::vector<BenchRow>& rows,
                                                   const RunReportInputs& in = {}) {
  JsonWriter w;
  detail::begin_report(w, "bench", in);
  w.key("graph");
  w.null();
  w.key("result");
  w.null();
  w.key("rows");
  w.begin_array();
  for (const auto& r : rows) {
    w.begin_object();
    w.key("series");
    w.value(r.series);
    w.key("threads");
    w.value(r.threads);
    w.key("trial");
    w.value(r.trial);
    w.key("seconds");
    w.value(r.seconds);
    w.key("values");
    w.begin_object();
    for (const auto& [k, v] : r.values) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  detail::end_report(w, in);
  return w.take();
}

/// CSV export of the per-level table (paper Tables 2-3 shape).  Includes
/// the failed partial level, marked in the final column.
template <VertexId V>
[[nodiscard]] std::string levels_csv(const Clustering<V>& c) {
  std::string out =
      "level,nv_before,ne_before,positive_edges,max_score,pairs_matched,"
      "match_sweeps,nv_after,ne_after,coverage,modularity,score_seconds,"
      "match_seconds,contract_seconds,status\n";
  char buf[512];
  const auto row = [&](const LevelStats& l, const char* status) {
    std::snprintf(buf, sizeof buf,
                  "%d,%lld,%lld,%lld,%.17g,%lld,%d,%lld,%lld,%.17g,%.17g,"
                  "%.17g,%.17g,%.17g,%s\n",
                  l.level, static_cast<long long>(l.nv_before),
                  static_cast<long long>(l.ne_before),
                  static_cast<long long>(l.positive_edges), l.max_score,
                  static_cast<long long>(l.pairs_matched), l.match_sweeps,
                  static_cast<long long>(l.nv_after),
                  static_cast<long long>(l.ne_after), l.coverage, l.modularity,
                  l.score_seconds, l.match_seconds, l.contract_seconds, status);
    out += buf;
  };
  for (const auto& l : c.levels) row(l, "completed");
  if (c.failed_level.has_value()) row(*c.failed_level, "failed");
  return out;
}

/// Writes `content` to `path`, throwing a structured kIoWrite error on
/// failure (consistent with the io/ layer's contract).
inline void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw_error(ErrorCode::kIoWrite, Phase::kUnknown, "cannot create " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) throw_error(ErrorCode::kIoWrite, Phase::kUnknown, "write failed: " + path);
}

}  // namespace commdet::obs
