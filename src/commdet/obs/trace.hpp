// Span-based phase tracing.
//
// A Trace collects nested, timestamped spans ("agglomerate" > "level" >
// "score"/"match"/"contract", ...) with the OpenMP thread count and
// arbitrary key/value attributes per span.  Instrumentation sites open
// spans through ScopedSpan, which reads one relaxed atomic to find the
// installed sink: when no Trace is installed the constructor stores a
// null pointer and every other member is a no-op, so the instrumented
// library costs nothing in ordinary runs (the acceptance bar:
// unmeasurable in bench_primitives).
//
// ScopedSpan is exception-correct by construction: its destructor is
// noexcept, runs during unwinding, and marks the span as errored when it
// closes with more uncaught exceptions in flight than at open — so a
// phase contained by the robustness layer's exception frames still
// leaves its (partial) duration in the trace.  This is the span-level
// counterpart of the ScopedTimer accumulate-on-throw guarantee.
//
// Span open/close serializes on a mutex inside the Trace.  Spans are
// opened at phase/level granularity (tens per run), never per edge, so
// the lock is cold; hot-loop counting belongs to the metrics registry.
#pragma once

#include <omp.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace commdet::obs {

/// Attribute values a span can carry.
using AttrValue = std::variant<std::int64_t, double, std::string>;

struct Attr {
  std::string key;
  AttrValue value;
};

/// One finished (or still-open) span.  Times are seconds since the
/// owning Trace's epoch on the steady clock; end < 0 means still open.
struct SpanRecord {
  std::uint32_t id = 0;      // 1-based; 0 is "no span"
  std::uint32_t parent = 0;  // 0 = top-level
  std::string name;
  double start_seconds = 0.0;
  double end_seconds = -1.0;
  int threads = 0;  // omp_get_max_threads() at open
  bool error = false;
  std::vector<Attr> attrs;

  [[nodiscard]] double duration_seconds() const noexcept {
    return end_seconds >= 0.0 ? end_seconds - start_seconds : 0.0;
  }
};

/// Collector of spans for one run.  Thread-safe: spans may be opened and
/// closed from any thread (the parallel reader and pregel engine trace
/// from the calling thread, but nothing forbids concurrent traces).
class Trace {
 public:
  Trace() : epoch_(Clock::now()) {}
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  [[nodiscard]] double now_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  /// Opens a span; returns its id for children to reference.
  std::uint32_t open(std::string_view name, std::uint32_t parent) {
    std::lock_guard<std::mutex> lock(mu_);
    SpanRecord rec;
    rec.id = static_cast<std::uint32_t>(spans_.size() + 1);
    rec.parent = parent;
    rec.name.assign(name);
    rec.start_seconds = now_seconds();
    rec.threads = omp_get_max_threads();
    spans_.push_back(std::move(rec));
    return spans_.back().id;
  }

  void close(std::uint32_t id, bool error, std::vector<Attr> attrs) {
    std::lock_guard<std::mutex> lock(mu_);
    if (id == 0 || id > spans_.size()) return;
    auto& rec = spans_[id - 1];
    rec.end_seconds = now_seconds();
    rec.error = error;
    rec.attrs = std::move(attrs);
  }

  /// Snapshot of all spans recorded so far (open spans keep end < 0).
  [[nodiscard]] std::vector<SpanRecord> spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }

 private:
  using Clock = std::chrono::steady_clock;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  Clock::time_point epoch_;
};

namespace detail {

inline std::atomic<Trace*>& trace_slot() noexcept {
  static std::atomic<Trace*> slot{nullptr};
  return slot;
}

/// Innermost open span on this thread (parent for new spans).
inline std::uint32_t& current_span() noexcept {
  thread_local std::uint32_t id = 0;
  return id;
}

}  // namespace detail

/// The installed trace sink, or nullptr (tracing disabled).
[[nodiscard]] inline Trace* active_trace() noexcept {
  return detail::trace_slot().load(std::memory_order_relaxed);
}

/// Installs `t` as the process-wide sink (nullptr uninstalls).  Returns
/// the previous sink.  Callers own both traces' lifetimes.
inline Trace* install_trace(Trace* t) noexcept {
  return detail::trace_slot().exchange(t, std::memory_order_release);
}

/// RAII installation for the duration of a scope (CLI runs, tests).
class TraceSession {
 public:
  explicit TraceSession(Trace& t) noexcept : previous_(install_trace(&t)) {}
  ~TraceSession() { install_trace(previous_); }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  Trace* previous_;
};

/// RAII span.  All members (including the destructor) are noexcept; when
/// no trace is installed every operation is a no-op after one relaxed
/// atomic load in the constructor.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) noexcept
      : trace_(active_trace()), uncaught_at_open_(std::uncaught_exceptions()) {
    if (trace_ == nullptr) return;
    try {
      parent_before_ = detail::current_span();
      id_ = trace_->open(name, parent_before_);
      detail::current_span() = id_;
    } catch (...) {
      trace_ = nullptr;  // allocation failure: degrade to disabled
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() noexcept { close(); }

  /// True when a trace is recording this span (use to guard attribute
  /// computations that are not free, e.g. /proc reads).
  [[nodiscard]] bool active() const noexcept { return trace_ != nullptr; }

  void attr(std::string_view key, std::int64_t v) noexcept { add_attr(key, AttrValue(v)); }
  void attr(std::string_view key, int v) noexcept { attr(key, static_cast<std::int64_t>(v)); }
  void attr(std::string_view key, double v) noexcept { add_attr(key, AttrValue(v)); }
  void attr(std::string_view key, std::string_view v) noexcept {
    add_attr(key, AttrValue(std::string(v)));
  }

  /// Marks the span errored regardless of exception state (for failures
  /// contained before the span's scope unwinds).
  void set_error() noexcept { error_ = true; }

  /// Closes the span now (idempotent; the destructor calls it too).
  void close() noexcept {
    if (trace_ == nullptr) return;
    Trace* t = std::exchange(trace_, nullptr);
    const bool unwinding = std::uncaught_exceptions() > uncaught_at_open_;
    try {
      t->close(id_, error_ || unwinding, std::move(attrs_));
    } catch (...) {
      // Dropping a span beats terminating on a bad_alloc during unwind.
    }
    detail::current_span() = parent_before_;
  }

 private:
  void add_attr(std::string_view key, AttrValue v) noexcept {
    if (trace_ == nullptr) return;
    try {
      attrs_.push_back(Attr{std::string(key), std::move(v)});
    } catch (...) {
    }
  }

  Trace* trace_;
  std::uint32_t id_ = 0;
  std::uint32_t parent_before_ = 0;
  int uncaught_at_open_;
  bool error_ = false;
  std::vector<Attr> attrs_;
};

/// Renders the trace as an indented tree with durations — the CLI's
/// --trace output and a debugging aid.
[[nodiscard]] inline std::string format_trace(const Trace& trace) {
  const auto spans = trace.spans();
  std::string out;
  // O(n^2) child scan: traces hold tens of spans, not thousands.
  auto render = [&](auto&& self, std::uint32_t parent, int depth) -> void {
    for (const auto& s : spans) {
      if (s.parent != parent) continue;
      out.append(static_cast<std::size_t>(depth) * 2, ' ');
      out += s.name;
      char buf[64];
      std::snprintf(buf, sizeof buf, "  %.6fs", s.duration_seconds());
      out += buf;
      if (s.threads > 0) {
        std::snprintf(buf, sizeof buf, "  threads=%d", s.threads);
        out += buf;
      }
      if (s.error) out += "  [error]";
      for (const auto& a : s.attrs) {
        out += "  ";
        out += a.key;
        out += '=';
        if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
          out += std::to_string(*i);
        } else if (const auto* d = std::get_if<double>(&a.value)) {
          std::snprintf(buf, sizeof buf, "%.6g", *d);
          out += buf;
        } else {
          out += std::get<std::string>(a.value);
        }
      }
      out += '\n';
      self(self, s.id, depth + 1);
    }
  };
  render(render, 0, 0);
  return out;
}

}  // namespace commdet::obs
