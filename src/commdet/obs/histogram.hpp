// Lock-free latency histograms: cache-line-sharded log2 buckets with
// mergeable snapshots and exact-count percentile readout.
//
// A long-running daemon cannot afford a mutex (or even a shared cache
// line) on its batch/query hot paths, but it does need live p50/p99.
// The compromise mirrors the sharded Counter (obs/metrics.hpp): each
// thread fetch-adds a thread-private shard's bucket, and readers merge
// the shards on demand.  Buckets are log2-spaced — bucket i counts
// values v with bit_width(v) == i, i.e. 2^(i-1) <= v < 2^i — so the
// whole int64 range fits in 64 buckets and recording is a bit_width
// plus one relaxed fetch-add.
//
// "Exact-count" percentiles: the merged per-bucket counts are exact
// (writers quiesced), so the rank of the p-th sample is exact; only the
// reported *value* is quantized to the bucket's inclusive upper bound
// (a factor-of-two ceiling, which is what a log2 histogram can say).
//
// Values are whatever unit the call site picks; the serve layer records
// latencies in integer microseconds via record_seconds(), and names the
// metrics "*_us" so readers know.  Negative values clamp into bucket 0.
//
// Instrumentation discipline matches Counter: resolve once per kernel
// or session ("obs::histogram(name)" is nullptr when no registry is
// installed), then `if (h) h->record(v);` — the disabled cost is one
// predictable branch.
#pragma once

#include <omp.h>

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace commdet::obs {

inline constexpr std::size_t kHistogramCacheLineBytes = 64;

/// Number of log2 buckets: bucket 0 holds v <= 0, bucket i (1..63)
/// holds bit_width(v) == i.  Bucket 63 is the overflow bucket — its
/// upper bound is INT64_MAX, so nothing is ever dropped.
inline constexpr int kHistogramBuckets = 64;

/// Merged, immutable view of a Histogram (or a sum of several): exact
/// per-bucket counts plus the value sum for the mean.
struct HistogramSnapshot {
  std::array<std::int64_t, kHistogramBuckets> buckets{};
  std::int64_t sum = 0;  // negative inputs clamp to 0 before summing

  [[nodiscard]] static constexpr int bucket_index(std::int64_t v) noexcept {
    if (v <= 0) return 0;
    return std::bit_width(static_cast<std::uint64_t>(v));
  }

  /// Inclusive upper bound of bucket i (0, 1, 3, 7, ..., INT64_MAX).
  [[nodiscard]] static constexpr std::int64_t bucket_upper(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= kHistogramBuckets - 1) return std::numeric_limits<std::int64_t>::max();
    return (std::int64_t{1} << i) - 1;
  }

  [[nodiscard]] std::int64_t count() const noexcept {
    std::int64_t c = 0;
    for (const auto b : buckets) c += b;
    return c;
  }

  [[nodiscard]] double mean() const noexcept {
    const std::int64_t c = count();
    return c > 0 ? static_cast<double>(sum) / static_cast<double>(c) : 0.0;
  }

  /// Nearest-rank percentile, p in [0, 1]: the inclusive upper bound of
  /// the bucket holding the ceil(p * count)-th smallest sample (rank 1
  /// for p = 0).  Returns 0 for an empty histogram.
  [[nodiscard]] std::int64_t percentile(double p) const noexcept {
    const std::int64_t c = count();
    if (c <= 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    std::int64_t rank = static_cast<std::int64_t>(std::ceil(p * static_cast<double>(c)));
    if (rank < 1) rank = 1;
    if (rank > c) rank = c;
    std::int64_t seen = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      seen += buckets[i];
      if (seen >= rank) return bucket_upper(i);
    }
    return bucket_upper(kHistogramBuckets - 1);  // unreachable
  }

  void merge(const HistogramSnapshot& other) noexcept {
    for (int i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
    sum += other.sum;
  }
};

namespace detail {

struct alignas(kHistogramCacheLineBytes) HistogramShard {
  std::array<std::atomic<std::int64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::int64_t> sum{0};
};

}  // namespace detail

/// Concurrent log2 histogram.  record() touches only the calling
/// thread's shard (same slot policy as Counter); snapshot() merges.
class Histogram {
 public:
  Histogram() : shards_(histogram_shard_count()), mask_(shards_.size() - 1) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Concurrency-safe from any thread, including inside OpenMP regions.
  void record(std::int64_t v) noexcept {
    auto& s = shards_[static_cast<std::size_t>(omp_get_thread_num()) & mask_];
    s.buckets[static_cast<std::size_t>(HistogramSnapshot::bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
  }

  /// Records a duration in integer microseconds (the serve layer's
  /// latency unit; sub-microsecond durations land in bucket 0).
  void record_seconds(double seconds) noexcept {
    if (!(seconds > 0.0)) {  // negative or NaN: clamp into bucket 0
      record(0);
      return;
    }
    const double us = seconds * 1e6;
    record(us >= 9.2e18 ? std::numeric_limits<std::int64_t>::max()
                        : static_cast<std::int64_t>(std::llround(us)));
  }

  /// Merged view; exact once writers have quiesced, a consistent-enough
  /// sample while they run (each fetch-add is atomic).
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    for (const auto& s : shards_) {
      for (int i = 0; i < kHistogramBuckets; ++i)
        out.buckets[i] += s.buckets[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  // Mirrors obs::detail::shard_count() without depending on metrics.hpp
  // (metrics.hpp includes this header to put histograms in the registry).
  [[nodiscard]] static std::size_t histogram_shard_count() noexcept {
    std::size_t n = 1;
    const auto threads = static_cast<std::size_t>(omp_get_max_threads());
    while (n < threads && n < 256) n <<= 1;
    return n;
  }

  std::vector<detail::HistogramShard> shards_;
  std::size_t mask_;
};

}  // namespace commdet::obs
