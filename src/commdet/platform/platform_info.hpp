// Host platform detection: reproduces the role of the paper's Table I
// (processor characteristics of the test platforms) for whatever machine
// the benchmarks run on.
#pragma once

#include <cstdint>
#include <string>

namespace commdet {

struct PlatformInfo {
  std::string cpu_model;        // e.g. "Intel Xeon E7-8870"
  int logical_cpus = 0;         // online logical processors
  int omp_max_threads = 0;      // OpenMP runtime's view
  double cpu_mhz = 0.0;         // nominal/reported frequency
  std::int64_t total_ram_bytes = 0;
  std::string openmp_version;   // from _OPENMP date macro
};

/// Detects the current host from /proc and the OpenMP runtime.
[[nodiscard]] PlatformInfo detect_platform();

/// Formats the info as a Table-I-style text block.
[[nodiscard]] std::string format_platform_table(const PlatformInfo& info);

}  // namespace commdet
