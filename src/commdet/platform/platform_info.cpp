#include "commdet/platform/platform_info.hpp"

#include <omp.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

namespace commdet {

namespace {

std::string openmp_version_string() {
#ifdef _OPENMP
  switch (_OPENMP) {
    case 201811: return "5.0";
    case 202011: return "5.1";
    case 202111: return "5.2";
    case 201511: return "4.5";
    case 201307: return "4.0";
    default: {
      std::ostringstream os;
      os << "(date " << _OPENMP << ")";
      return os.str();
    }
  }
#else
  return "none";
#endif
}

}  // namespace

PlatformInfo detect_platform() {
  PlatformInfo info;
  info.logical_cpus = static_cast<int>(sysconf(_SC_NPROCESSORS_ONLN));
  info.omp_max_threads = omp_get_max_threads();
  info.openmp_version = openmp_version_string();

  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page_size = sysconf(_SC_PAGE_SIZE);
  if (pages > 0 && page_size > 0)
    info.total_ram_bytes = static_cast<std::int64_t>(pages) * page_size;

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (info.cpu_model.empty() && line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) info.cpu_model = line.substr(colon + 2);
    } else if (info.cpu_mhz == 0.0 && line.rfind("cpu MHz", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) info.cpu_mhz = std::stod(line.substr(colon + 1));
    }
  }
  if (info.cpu_model.empty()) info.cpu_model = "unknown";
  return info;
}

std::string format_platform_table(const PlatformInfo& info) {
  std::ostringstream os;
  os << "Processor:        " << info.cpu_model << "\n"
     << "Logical CPUs:     " << info.logical_cpus << "\n"
     << "OpenMP threads:   " << info.omp_max_threads << " (OpenMP " << info.openmp_version
     << ")\n"
     << "Clock (reported): " << info.cpu_mhz << " MHz\n"
     << "RAM:              " << (static_cast<double>(info.total_ram_bytes) / (1024.0 * 1024.0 * 1024.0))
     << " GiB\n";
  return os.str();
}

}  // namespace commdet
