// Watts–Strogatz small-world generator: a ring lattice with k neighbors
// per side, each edge rewired with probability beta.
//
// Small-world graphs have high clustering but little modular structure —
// a useful contrast workload between caveman (ideal communities) and
// R-MAT (scale-free, no communities).  Counter-based RNG keeps the
// generation parallel and deterministic.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "commdet/graph/edge_list.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct WattsStrogatzParams {
  std::int64_t num_vertices = 1024;
  std::int64_t neighbors_per_side = 4;  // "k/2" in the usual formulation
  double rewire_probability = 0.1;      // beta
  std::uint64_t seed = 1;
};

template <VertexId V>
[[nodiscard]] EdgeList<V> generate_watts_strogatz(const WattsStrogatzParams& p) {
  if (p.num_vertices < 3) throw std::invalid_argument("watts-strogatz needs >= 3 vertices");
  if (p.neighbors_per_side < 1 || 2 * p.neighbors_per_side >= p.num_vertices)
    throw std::invalid_argument("neighbors_per_side out of range");
  if (p.rewire_probability < 0.0 || p.rewire_probability > 1.0)
    throw std::invalid_argument("rewire probability must be in [0, 1]");
  if (!fits_vertex_id<V>(p.num_vertices - 1))
    throw std::invalid_argument("vertex type too narrow");

  const std::int64_t ne = p.num_vertices * p.neighbors_per_side;
  EdgeList<V> out;
  out.num_vertices = static_cast<V>(p.num_vertices);
  out.edges.resize(static_cast<std::size_t>(ne));

  const CounterRng rng(p.seed, /*stream=*/0x5753 /* "WS" */);
  parallel_for(ne, [&](std::int64_t e) {
    const std::int64_t v = e / p.neighbors_per_side;
    const std::int64_t hop = e % p.neighbors_per_side + 1;
    std::int64_t target = (v + hop) % p.num_vertices;
    if (rng.uniform(static_cast<std::uint64_t>(2 * e)) < p.rewire_probability) {
      // Rewire the far endpoint anywhere except v (self-loop); a
      // duplicate of an existing edge just accumulates weight.
      const auto r = static_cast<std::int64_t>(rng.below(
          static_cast<std::uint64_t>(2 * e + 1), static_cast<std::uint64_t>(p.num_vertices - 1)));
      target = r >= v ? r + 1 : r;
    }
    out.edges[static_cast<std::size_t>(e)] = {static_cast<V>(v), static_cast<V>(target), 1};
  });
  return out;
}

}  // namespace commdet
