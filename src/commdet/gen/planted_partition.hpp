// Planted-partition (stochastic-block-model style) generator.
//
// Stand-in for soc-LiveJournal1: a graph "rich with community structures"
// (Sec. V-B).  Vertices are split into k equal blocks; `internal_degree`
// expected intra-block edges and `external_degree` expected inter-block
// edges are sampled per vertex.  Endpoints are drawn uniformly inside the
// relevant block(s), duplicates accumulate in the builder — the same
// multigraph convention as R-MAT.  Counter-based RNG keeps generation
// parallel and schedule-independent, and the planted block of each vertex
// is simply vertex_id / block_size, so recovery experiments can compare
// detected communities against ground truth.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "commdet/graph/edge_list.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct PlantedPartitionParams {
  std::int64_t num_vertices = 1 << 16;
  std::int64_t num_blocks = 256;
  double internal_degree = 12.0;  // expected intra-block degree per vertex
  double external_degree = 3.0;   // expected inter-block degree per vertex
  std::uint64_t seed = 1;
};

/// Ground-truth block of a vertex for the given parameters.
[[nodiscard]] inline std::int64_t planted_block_of(const PlantedPartitionParams& p,
                                                   std::int64_t v) noexcept {
  const std::int64_t block_size = p.num_vertices / p.num_blocks;
  const std::int64_t b = v / block_size;
  return b < p.num_blocks ? b : p.num_blocks - 1;  // remainder joins the last block
}

template <VertexId V>
[[nodiscard]] EdgeList<V> generate_planted_partition(const PlantedPartitionParams& p) {
  if (p.num_vertices <= 0) throw std::invalid_argument("num_vertices must be positive");
  if (p.num_blocks <= 0 || p.num_blocks > p.num_vertices)
    throw std::invalid_argument("num_blocks out of range");
  if (p.internal_degree < 0 || p.external_degree < 0)
    throw std::invalid_argument("degrees must be non-negative");
  if (!fits_vertex_id<V>(p.num_vertices - 1))
    throw std::invalid_argument("vertex type too narrow");

  const std::int64_t block_size = p.num_vertices / p.num_blocks;
  // Each undirected edge is generated once from one endpoint, so halve the
  // per-vertex expected degrees.
  const std::int64_t internal_per_vertex =
      static_cast<std::int64_t>(p.internal_degree / 2.0 + 0.5);
  const std::int64_t external_per_vertex =
      static_cast<std::int64_t>(p.external_degree / 2.0 + 0.5);
  const std::int64_t per_vertex = internal_per_vertex + external_per_vertex;

  EdgeList<V> out;
  out.num_vertices = static_cast<V>(p.num_vertices);
  out.edges.resize(static_cast<std::size_t>(p.num_vertices * per_vertex));

  const CounterRng rng(p.seed, /*stream=*/0x53424d /* "SBM" */);
  parallel_for(p.num_vertices, [&](std::int64_t v) {
    const std::int64_t block = planted_block_of(p, v);
    const std::int64_t block_lo = block * block_size;
    const std::int64_t block_hi =
        (block == p.num_blocks - 1) ? p.num_vertices : block_lo + block_size;
    const std::uint64_t base = static_cast<std::uint64_t>(v) * static_cast<std::uint64_t>(per_vertex);
    std::size_t slot = static_cast<std::size_t>(v * per_vertex);

    for (std::int64_t i = 0; i < internal_per_vertex; ++i) {
      const std::int64_t u =
          block_lo + static_cast<std::int64_t>(
                         rng.below(base + static_cast<std::uint64_t>(i),
                                   static_cast<std::uint64_t>(block_hi - block_lo)));
      out.edges[slot++] = {static_cast<V>(v), static_cast<V>(u), 1};
    }
    for (std::int64_t i = 0; i < external_per_vertex; ++i) {
      // Uniform vertex anywhere; landing in the own block occasionally is
      // harmless (slightly raises internal density).
      const std::int64_t u = static_cast<std::int64_t>(
          rng.below(base + static_cast<std::uint64_t>(internal_per_vertex + i),
                    static_cast<std::uint64_t>(p.num_vertices)));
      out.edges[slot++] = {static_cast<V>(v), static_cast<V>(u), 1};
    }
  });
  return out;
}

}  // namespace commdet
