// Barabási–Albert preferential-attachment generator.
//
// Produces power-law degree distributions through the classic
// edge-endpoint trick: a new vertex attaches to m targets, each chosen by
// picking a uniformly random endpoint from the edges generated so far
// (endpoint frequency is proportional to degree).  Inherently sequential
// in its growth process, but O(n·m) and deterministic for a given seed.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "commdet/graph/edge_list.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct BarabasiAlbertParams {
  std::int64_t num_vertices = 1024;
  std::int64_t edges_per_vertex = 4;  // m
  std::uint64_t seed = 1;
};

template <VertexId V>
[[nodiscard]] EdgeList<V> generate_barabasi_albert(const BarabasiAlbertParams& p) {
  if (p.edges_per_vertex < 1) throw std::invalid_argument("edges_per_vertex must be >= 1");
  if (p.num_vertices <= p.edges_per_vertex)
    throw std::invalid_argument("need more vertices than edges_per_vertex");
  if (!fits_vertex_id<V>(p.num_vertices - 1))
    throw std::invalid_argument("vertex type too narrow");

  EdgeList<V> out;
  out.num_vertices = static_cast<V>(p.num_vertices);
  out.edges.reserve(static_cast<std::size_t>(p.num_vertices * p.edges_per_vertex));

  Xoshiro256ss rng(p.seed ^ 0x4241 /* "BA" */);

  // Seed graph: a (m+1)-clique so every early vertex has degree >= m.
  const std::int64_t m = p.edges_per_vertex;
  for (std::int64_t u = 0; u <= m; ++u)
    for (std::int64_t v = u + 1; v <= m; ++v)
      out.edges.push_back({static_cast<V>(u), static_cast<V>(v), 1});

  for (std::int64_t v = m + 1; v < p.num_vertices; ++v) {
    const std::int64_t existing = 2 * static_cast<std::int64_t>(out.edges.size());
    for (std::int64_t k = 0; k < m; ++k) {
      // Pick a uniform endpoint among all existing edge endpoints.
      const auto pick = static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(existing));
      const auto& e = out.edges[static_cast<std::size_t>(pick / 2)];
      const V target = (pick % 2 == 0) ? e.u : e.v;
      // A repeat target just accumulates weight downstream.
      out.edges.push_back({static_cast<V>(v), target, 1});
    }
  }
  return out;
}

}  // namespace commdet
