// Deterministic graph shapes for tests, examples, and complexity
// benchmarks.  The star graph is the paper's worst case (two vertices
// contracted per step, O(|E|*|V|) total); the caveman family is the
// best case for community detection (cliques joined in a ring).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "commdet/graph/edge_list.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

/// Star: vertex 0 adjacent to all others.
template <VertexId V>
[[nodiscard]] EdgeList<V> make_star(std::int64_t n) {
  if (n < 1) throw std::invalid_argument("star needs >= 1 vertex");
  EdgeList<V> g;
  g.num_vertices = static_cast<V>(n);
  g.edges.reserve(static_cast<std::size_t>(n - 1));
  for (std::int64_t v = 1; v < n; ++v) g.add(V{0}, static_cast<V>(v));
  return g;
}

/// Simple path 0-1-2-...-(n-1).
template <VertexId V>
[[nodiscard]] EdgeList<V> make_path(std::int64_t n) {
  if (n < 1) throw std::invalid_argument("path needs >= 1 vertex");
  EdgeList<V> g;
  g.num_vertices = static_cast<V>(n);
  for (std::int64_t v = 0; v + 1 < n; ++v) g.add(static_cast<V>(v), static_cast<V>(v + 1));
  return g;
}

/// Cycle of n vertices.
template <VertexId V>
[[nodiscard]] EdgeList<V> make_cycle(std::int64_t n) {
  if (n < 3) throw std::invalid_argument("cycle needs >= 3 vertices");
  auto g = make_path<V>(n);
  g.add(static_cast<V>(n - 1), V{0});
  return g;
}

/// Complete graph K_n.
template <VertexId V>
[[nodiscard]] EdgeList<V> make_clique(std::int64_t n) {
  if (n < 1) throw std::invalid_argument("clique needs >= 1 vertex");
  EdgeList<V> g;
  g.num_vertices = static_cast<V>(n);
  for (std::int64_t u = 0; u < n; ++u)
    for (std::int64_t v = u + 1; v < n; ++v) g.add(static_cast<V>(u), static_cast<V>(v));
  return g;
}

/// 2-D grid graph rows x cols with 4-neighborhoods.
template <VertexId V>
[[nodiscard]] EdgeList<V> make_grid(std::int64_t rows, std::int64_t cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("grid needs positive dimensions");
  EdgeList<V> g;
  g.num_vertices = static_cast<V>(rows * cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int64_t v = r * cols + c;
      if (c + 1 < cols) g.add(static_cast<V>(v), static_cast<V>(v + 1));
      if (r + 1 < rows) g.add(static_cast<V>(v), static_cast<V>(v + cols));
    }
  }
  return g;
}

/// Connected caveman graph: `num_caves` cliques of `cave_size`, each cave
/// linked to the next by a single edge (ring of cliques).  Ideal planted
/// communities for quality tests.
template <VertexId V>
[[nodiscard]] EdgeList<V> make_caveman(std::int64_t num_caves, std::int64_t cave_size) {
  if (num_caves < 1 || cave_size < 2)
    throw std::invalid_argument("caveman needs >= 1 cave of size >= 2");
  EdgeList<V> g;
  g.num_vertices = static_cast<V>(num_caves * cave_size);
  for (std::int64_t cave = 0; cave < num_caves; ++cave) {
    const std::int64_t lo = cave * cave_size;
    for (std::int64_t u = 0; u < cave_size; ++u)
      for (std::int64_t v = u + 1; v < cave_size; ++v)
        g.add(static_cast<V>(lo + u), static_cast<V>(lo + v));
    if (num_caves > 1) {
      const std::int64_t next_lo = ((cave + 1) % num_caves) * cave_size;
      // Vertex 0 of this cave links to vertex 1 of the next, keeping the
      // two inter-cave edges of a 2-cave ring distinct.
      g.add(static_cast<V>(lo), static_cast<V>(next_lo + 1));
    }
  }
  return g;
}

/// Complete bipartite graph K_{m,n}.
template <VertexId V>
[[nodiscard]] EdgeList<V> make_complete_bipartite(std::int64_t m, std::int64_t n) {
  if (m < 1 || n < 1) throw std::invalid_argument("bipartite sides must be positive");
  EdgeList<V> g;
  g.num_vertices = static_cast<V>(m + n);
  for (std::int64_t u = 0; u < m; ++u)
    for (std::int64_t v = 0; v < n; ++v) g.add(static_cast<V>(u), static_cast<V>(m + v));
  return g;
}

}  // namespace commdet
