// R-MAT graph generator (Chakrabarti, Zhan, Faloutsos; SSCA#2 flavor).
//
// The paper's artificial workload: an R-MAT graph with a = 0.55,
// b = c = 0.1, d = 0.25, scale 24, edge factor 16, with multiple edges
// accumulated into weights and the largest connected component extracted
// (Sec. V-B).  Generation here is parallel *and* schedule-independent:
// every edge draws from a counter-based RNG keyed by its index, so the
// same parameters always produce the same multigraph.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "commdet/graph/edge_list.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct RmatParams {
  int scale = 16;          // 2^scale vertices
  int edge_factor = 16;    // edge_factor * 2^scale generated edges
  double a = 0.55;         // quadrant probabilities (paper's defaults)
  double b = 0.10;
  double c = 0.10;
  double d = 0.25;
  double noise = 0.10;     // SSCA#2-style per-level multiplicative noise
  std::uint64_t seed = 1;
};

/// Generates the raw R-MAT multigraph (self-loops and duplicates included,
/// as produced by the recursive quadrant descent).  The community-graph
/// builder performs the accumulation step.
template <VertexId V>
[[nodiscard]] EdgeList<V> generate_rmat(const RmatParams& p) {
  if (p.scale <= 0 || p.scale >= 31) throw std::invalid_argument("rmat scale out of range");
  if (p.edge_factor <= 0) throw std::invalid_argument("rmat edge factor must be positive");
  const double sum = p.a + p.b + p.c + p.d;
  if (sum < 0.999 || sum > 1.001) throw std::invalid_argument("rmat probabilities must sum to 1");

  const std::int64_t nv = std::int64_t{1} << p.scale;
  if (!fits_vertex_id<V>(nv - 1)) throw std::invalid_argument("vertex type too narrow for scale");
  const std::int64_t ne = static_cast<std::int64_t>(p.edge_factor) * nv;

  EdgeList<V> out;
  out.num_vertices = static_cast<V>(nv);
  out.edges.resize(static_cast<std::size_t>(ne));

  const CounterRng rng(p.seed, /*stream=*/0x524d4154 /* "RMAT" */);
  parallel_for(ne, [&](std::int64_t e) {
    // Each edge consumes `2 * scale` independent draws: one quadrant draw
    // and one noise draw per level.
    const std::uint64_t base = static_cast<std::uint64_t>(e) * (2 * static_cast<std::uint64_t>(p.scale));
    std::int64_t row = 0;
    std::int64_t col = 0;
    for (int level = 0; level < p.scale; ++level) {
      double a = p.a;
      double b = p.b;
      double c = p.c;
      double d = p.d;
      if (p.noise > 0.0) {
        // Multiplicative perturbation, renormalized, per SSCA#2.
        const std::uint64_t nbits = rng.at(base + 2 * static_cast<std::uint64_t>(level) + 1);
        const auto jitter = [&](int k) {
          const double u = static_cast<double>((nbits >> (16 * k)) & 0xffff) / 65536.0;
          return 1.0 - p.noise / 2.0 + p.noise * u;
        };
        a *= jitter(0);
        b *= jitter(1);
        c *= jitter(2);
        d *= jitter(3);
        const double total = a + b + c + d;
        a /= total;
        b /= total;
        c /= total;
        d /= total;
      }
      const double u = rng.uniform(base + 2 * static_cast<std::uint64_t>(level));
      row <<= 1;
      col <<= 1;
      if (u < a) {
        // top-left quadrant
      } else if (u < a + b) {
        col |= 1;
      } else if (u < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    out.edges[static_cast<std::size_t>(e)] = {static_cast<V>(row), static_cast<V>(col), 1};
  });
  return out;
}

}  // namespace commdet
