// Erdős–Rényi G(n, M) multigraph generator: M edges with both endpoints
// uniform.  Duplicates and self-loops accumulate in the builder.  Used by
// tests as the "no community structure" contrast workload.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "commdet/graph/edge_list.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

template <VertexId V>
[[nodiscard]] EdgeList<V> generate_erdos_renyi(std::int64_t num_vertices,
                                               std::int64_t num_edges,
                                               std::uint64_t seed = 1) {
  if (num_vertices <= 0) throw std::invalid_argument("num_vertices must be positive");
  if (num_edges < 0) throw std::invalid_argument("num_edges must be non-negative");
  if (!fits_vertex_id<V>(num_vertices - 1))
    throw std::invalid_argument("vertex type too narrow");

  EdgeList<V> out;
  out.num_vertices = static_cast<V>(num_vertices);
  out.edges.resize(static_cast<std::size_t>(num_edges));
  const CounterRng rng(seed, /*stream=*/0x4552 /* "ER" */);
  parallel_for(num_edges, [&](std::int64_t e) {
    const auto u = static_cast<V>(rng.below(static_cast<std::uint64_t>(2 * e),
                                            static_cast<std::uint64_t>(num_vertices)));
    const auto v = static_cast<V>(rng.below(static_cast<std::uint64_t>(2 * e + 1),
                                            static_cast<std::uint64_t>(num_vertices)));
    out.edges[static_cast<std::size_t>(e)] = {u, v, 1};
  });
  return out;
}

}  // namespace commdet
