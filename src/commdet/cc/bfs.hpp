// Level-synchronous parallel breadth-first search over a CSR graph.
//
// Substrate used by validation (independent connectivity oracle for the
// union-find components) and by the small-world analyses (hop-distance
// probes on Watts-Strogatz graphs).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "commdet/graph/csr.hpp"
#include "commdet/util/compact.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

inline constexpr std::int64_t kUnreachable = -1;

/// Distances (hop counts) from `source`; kUnreachable for other
/// components.  Level-synchronous frontier expansion, CAS-claimed visits.
template <VertexId V>
[[nodiscard]] std::vector<std::int64_t> bfs_distances(const CsrGraph<V>& g, V source) {
  const auto nv = static_cast<std::int64_t>(g.num_vertices());
  std::vector<std::int64_t> dist(static_cast<std::size_t>(nv), kUnreachable);
  if (source < 0 || static_cast<std::int64_t>(source) >= nv) return dist;

  dist[static_cast<std::size_t>(source)] = 0;
  std::vector<V> frontier{source};
  std::int64_t level = 0;

  while (!frontier.empty()) {
    ++level;
    // Upper bound on the next frontier: sum of frontier degrees.
    EdgeId out_degree = 0;
    for (const V v : frontier) out_degree += g.degree(v);
    std::vector<V> next(static_cast<std::size_t>(out_degree), kNoVertex<V>);
    std::atomic<std::int64_t> cursor{0};

    parallel_for_dynamic(static_cast<std::int64_t>(frontier.size()), [&](std::int64_t i) {
      const V v = frontier[static_cast<std::size_t>(i)];
      for (const V u : g.neighbors_of(v)) {
        auto& slot = dist[static_cast<std::size_t>(u)];
        std::int64_t expected = kUnreachable;
        if (std::atomic_ref<std::int64_t>(slot).compare_exchange_strong(
                expected, level, std::memory_order_acq_rel)) {
          next[static_cast<std::size_t>(cursor.fetch_add(1, std::memory_order_relaxed))] = u;
        }
      }
    });
    next.resize(static_cast<std::size_t>(cursor.load()));
    frontier = std::move(next);
  }
  return dist;
}

/// Number of vertices reachable from `source` (including itself).
template <VertexId V>
[[nodiscard]] std::int64_t bfs_reachable_count(const CsrGraph<V>& g, V source) {
  const auto dist = bfs_distances(g, source);
  return parallel_count(static_cast<std::int64_t>(dist.size()), [&](std::int64_t v) {
    return dist[static_cast<std::size_t>(v)] != kUnreachable;
  });
}

/// The eccentricity of `source` within its component (max hop distance).
template <VertexId V>
[[nodiscard]] std::int64_t bfs_eccentricity(const CsrGraph<V>& g, V source) {
  const auto dist = bfs_distances(g, source);
  return parallel_max<std::int64_t>(static_cast<std::int64_t>(dist.size()), 0,
                                    [&](std::int64_t v) {
                                      const auto d = dist[static_cast<std::size_t>(v)];
                                      return d == kUnreachable ? 0 : d;
                                    });
}

}  // namespace commdet
