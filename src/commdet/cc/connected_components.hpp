// Parallel connected components over raw edge lists.
//
// The R-MAT pipeline extracts the largest connected component before
// community detection (Sec. V-B).  Lock-free union-find: edges hook the
// larger root under the smaller via CAS, finds use path halving.  The
// result is schedule-independent (component labels are the minimum vertex
// id in each component).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "commdet/graph/edge_list.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/prefix_sum.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

namespace detail {

template <VertexId V>
V uf_find(std::vector<V>& parent, V x) noexcept {
  // Path halving with atomic reads; concurrent updates only ever move
  // parents closer to the root, so stale reads are safe.
  V p = std::atomic_ref<V>(parent[static_cast<std::size_t>(x)]).load(std::memory_order_relaxed);
  while (p != x) {
    const V gp = std::atomic_ref<V>(parent[static_cast<std::size_t>(p)]).load(std::memory_order_relaxed);
    if (gp == p) return p;
    std::atomic_ref<V>(parent[static_cast<std::size_t>(x)])
        .compare_exchange_weak(p, gp, std::memory_order_relaxed);
    x = gp;
    p = std::atomic_ref<V>(parent[static_cast<std::size_t>(x)]).load(std::memory_order_relaxed);
  }
  return x;
}

template <VertexId V>
void uf_union(std::vector<V>& parent, V a, V b) noexcept {
  for (;;) {
    V ra = uf_find(parent, a);
    V rb = uf_find(parent, b);
    if (ra == rb) return;
    if (ra > rb) std::swap(ra, rb);  // hook larger root under smaller
    V expected = rb;
    if (std::atomic_ref<V>(parent[static_cast<std::size_t>(rb)])
            .compare_exchange_strong(expected, ra, std::memory_order_acq_rel))
      return;
  }
}

}  // namespace detail

/// Component label per vertex: the minimum vertex id in its component.
template <VertexId V>
[[nodiscard]] std::vector<V> connected_components(const EdgeList<V>& g) {
  const auto nv = static_cast<std::int64_t>(g.num_vertices);
  std::vector<V> parent(static_cast<std::size_t>(nv));
  parallel_for(nv, [&](std::int64_t v) { parent[static_cast<std::size_t>(v)] = static_cast<V>(v); });

  parallel_for(g.num_edges(), [&](std::int64_t e) {
    const auto& edge = g.edges[static_cast<std::size_t>(e)];
    if (edge.u != edge.v) detail::uf_union(parent, edge.u, edge.v);
  });

  // Flatten so every vertex points directly at its root.
  parallel_for(nv, [&](std::int64_t v) {
    parent[static_cast<std::size_t>(v)] = detail::uf_find(parent, static_cast<V>(v));
  });
  return parent;
}

/// Number of distinct components given labels from connected_components.
template <VertexId V>
[[nodiscard]] std::int64_t count_components(const std::vector<V>& labels) {
  return parallel_count(static_cast<std::int64_t>(labels.size()), [&](std::int64_t v) {
    return labels[static_cast<std::size_t>(v)] == static_cast<V>(v);
  });
}

/// Extracts the largest connected component and densely relabels its
/// vertices (order-preserving).  Self-loops inside the component survive.
template <VertexId V>
[[nodiscard]] EdgeList<V> largest_component(const EdgeList<V>& g) {
  const auto nv = static_cast<std::int64_t>(g.num_vertices);
  if (nv == 0) return g;
  const auto labels = connected_components(g);

  std::vector<std::int64_t> size(static_cast<std::size_t>(nv), 0);
  parallel_for(nv, [&](std::int64_t v) {
    std::atomic_ref<std::int64_t>(size[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])])
        .fetch_add(1, std::memory_order_relaxed);
  });
  std::int64_t best_root = 0;
  for (std::int64_t v = 1; v < nv; ++v)
    if (size[static_cast<std::size_t>(v)] > size[static_cast<std::size_t>(best_root)]) best_root = v;

  // Dense new ids for members, in vertex order.
  std::vector<std::int64_t> member(static_cast<std::size_t>(nv), 0);
  parallel_for(nv, [&](std::int64_t v) {
    member[static_cast<std::size_t>(v)] =
        labels[static_cast<std::size_t>(v)] == static_cast<V>(best_root) ? 1 : 0;
  });
  std::vector<std::int64_t> new_id(member);
  const std::int64_t kept = exclusive_prefix_sum(std::span<std::int64_t>(new_id));

  EdgeList<V> out;
  out.num_vertices = static_cast<V>(kept);
  // Count surviving edges, then fill (order-preserving compaction).
  const std::int64_t surviving = parallel_count(g.num_edges(), [&](std::int64_t e) {
    return labels[static_cast<std::size_t>(g.edges[static_cast<std::size_t>(e)].u)] ==
           static_cast<V>(best_root);
  });
  out.edges.resize(static_cast<std::size_t>(surviving));
  std::atomic<std::int64_t> cursor{0};
  parallel_for(g.num_edges(), [&](std::int64_t e) {
    const auto& edge = g.edges[static_cast<std::size_t>(e)];
    if (labels[static_cast<std::size_t>(edge.u)] != static_cast<V>(best_root)) return;
    const std::int64_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
    out.edges[static_cast<std::size_t>(slot)] = {
        static_cast<V>(new_id[static_cast<std::size_t>(edge.u)]),
        static_cast<V>(new_id[static_cast<std::size_t>(edge.v)]), edge.w};
  });
  return out;
}

}  // namespace commdet
