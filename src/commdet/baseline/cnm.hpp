// Sequential Clauset–Newman–Moore-style agglomerative modularity
// maximization with a lazy priority queue [13, 28].
//
// This is the algorithmic family the paper replaces ("prior
// modularity-maximizing algorithms sequentially maintain and update
// priority queues; we replace the queue with a weighted graph matching")
// and the quality reference standing in for SNAP's sequential
// implementation: bench_quality compares the parallel algorithm's
// modularity against this.
//
// One best-scoring merge per step (vs a whole matching per level), lazy
// heap invalidation, community adjacency kept in hash maps.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "commdet/graph/builder.hpp"
#include "commdet/graph/community_graph.hpp"
#include "commdet/util/timer.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

template <VertexId V>
struct SequentialResult {
  std::vector<V> community;  // dense labels per original vertex
  std::int64_t num_communities = 0;
  double modularity = 0.0;
  double coverage = 0.0;
  std::int64_t merges = 0;
  double seconds = 0.0;
};

struct CnmOptions {
  /// Stop once coverage reaches this value (values > 1 run to local max).
  double min_coverage = 2.0;
  /// Stop when at most this many communities remain.
  std::int64_t min_communities = 1;
};

template <VertexId V>
[[nodiscard]] SequentialResult<V> cnm_cluster(const CommunityGraph<V>& g,
                                              const CnmOptions& opts = {}) {
  WallTimer timer;
  const auto nv = static_cast<std::int64_t>(g.nv);
  const double w_total = static_cast<double>(g.total_weight);

  // Community state: hash-map adjacency, self weight, volume, liveness.
  std::vector<std::unordered_map<std::int64_t, Weight>> adj(static_cast<std::size_t>(nv));
  std::vector<Weight> self(g.self_weight.begin(), g.self_weight.end());
  std::vector<Weight> vol(g.volume.begin(), g.volume.end());
  std::vector<bool> alive(static_cast<std::size_t>(nv), true);
  // Where each original community ended up (path-compressed forest).
  std::vector<std::int64_t> parent(static_cast<std::size_t>(nv));
  for (std::int64_t v = 0; v < nv; ++v) parent[static_cast<std::size_t>(v)] = v;

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto i = static_cast<std::size_t>(e);
    adj[static_cast<std::size_t>(g.efirst[i])][g.esecond[i]] += g.eweight[i];
    adj[static_cast<std::size_t>(g.esecond[i])][g.efirst[i]] += g.eweight[i];
  }

  const auto dq = [&](std::int64_t a, std::int64_t b, Weight w_ab) {
    return static_cast<double>(w_ab) / w_total -
           static_cast<double>(vol[static_cast<std::size_t>(a)]) *
               static_cast<double>(vol[static_cast<std::size_t>(b)]) /
               (2.0 * w_total * w_total);
  };

  struct Entry {
    double score;
    std::int64_t a, b;
    bool operator<(const Entry& other) const { return score < other.score; }
  };
  std::priority_queue<Entry> heap;
  for (std::int64_t a = 0; a < nv; ++a)
    for (const auto& [b, w] : adj[static_cast<std::size_t>(a)])
      if (a < b) heap.push({dq(a, b, w), a, b});

  Weight inside = 0;
  for (std::int64_t v = 0; v < nv; ++v) inside += self[static_cast<std::size_t>(v)];

  SequentialResult<V> result;
  std::int64_t communities = nv;
  std::int64_t merges = 0;

  while (!heap.empty() && communities > opts.min_communities) {
    if (w_total > 0 && static_cast<double>(inside) / w_total >= opts.min_coverage) break;
    const Entry top = heap.top();
    heap.pop();
    const auto a = top.a;
    const auto b = top.b;
    if (!alive[static_cast<std::size_t>(a)] || !alive[static_cast<std::size_t>(b)]) continue;
    const auto it = adj[static_cast<std::size_t>(a)].find(b);
    if (it == adj[static_cast<std::size_t>(a)].end()) continue;  // edge merged away
    const double current = dq(a, b, it->second);
    if (current != top.score) {
      // Lazy invalidation: requeue with the up-to-date score.
      heap.push({current, a, b});
      continue;
    }
    if (current <= 0.0) break;  // local maximum

    // Merge the smaller adjacency into the larger (amortized cost).
    std::int64_t keep = a, drop = b;
    if (adj[static_cast<std::size_t>(keep)].size() < adj[static_cast<std::size_t>(drop)].size())
      std::swap(keep, drop);
    const Weight w_ab = it->second;
    alive[static_cast<std::size_t>(drop)] = false;
    parent[static_cast<std::size_t>(drop)] = keep;
    self[static_cast<std::size_t>(keep)] +=
        self[static_cast<std::size_t>(drop)] + w_ab;
    vol[static_cast<std::size_t>(keep)] += vol[static_cast<std::size_t>(drop)];
    inside += w_ab;
    adj[static_cast<std::size_t>(keep)].erase(drop);
    adj[static_cast<std::size_t>(drop)].erase(keep);
    for (const auto& [n, w] : adj[static_cast<std::size_t>(drop)]) {
      adj[static_cast<std::size_t>(n)].erase(drop);
      auto& slot = adj[static_cast<std::size_t>(keep)][n];
      slot += w;
      adj[static_cast<std::size_t>(n)][keep] = slot;
      heap.push({dq(keep, n, slot), std::min(keep, n), std::max(keep, n)});
    }
    adj[static_cast<std::size_t>(drop)].clear();
    --communities;
    ++merges;
  }

  // Resolve the merge forest into dense labels.
  std::vector<std::int64_t> root(static_cast<std::size_t>(nv));
  std::vector<V> dense(static_cast<std::size_t>(nv), kNoVertex<V>);
  V next = 0;
  for (std::int64_t v = 0; v < nv; ++v) {
    std::int64_t r = v;
    while (parent[static_cast<std::size_t>(r)] != r) r = parent[static_cast<std::size_t>(r)];
    // Path-compress.
    std::int64_t x = v;
    while (parent[static_cast<std::size_t>(x)] != r) {
      const auto nxt = parent[static_cast<std::size_t>(x)];
      parent[static_cast<std::size_t>(x)] = r;
      x = nxt;
    }
    root[static_cast<std::size_t>(v)] = r;
    if (dense[static_cast<std::size_t>(r)] == kNoVertex<V>) dense[static_cast<std::size_t>(r)] = next++;
  }
  result.community.resize(static_cast<std::size_t>(nv));
  for (std::int64_t v = 0; v < nv; ++v)
    result.community[static_cast<std::size_t>(v)] =
        dense[static_cast<std::size_t>(root[static_cast<std::size_t>(v)])];
  result.num_communities = next;
  result.merges = merges;

  if (w_total > 0) {
    result.coverage = static_cast<double>(inside) / w_total;
    for (std::int64_t c = 0; c < nv; ++c) {
      if (parent[static_cast<std::size_t>(c)] != c) continue;  // merged away
      const double volume = static_cast<double>(vol[static_cast<std::size_t>(c)]) / (2.0 * w_total);
      result.modularity +=
          static_cast<double>(self[static_cast<std::size_t>(c)]) / w_total - volume * volume;
    }
  } else {
    result.coverage = 1.0;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace commdet
