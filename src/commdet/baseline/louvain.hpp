// Sequential Louvain method (Blondel, Guillaume, Lambiotte, Lefebvre,
// "Fast unfolding of communities in large networks", 2008) — the paper's
// related-work comparator [17] ("it does not use matchings and has not
// been designed with parallelism in mind").
//
// Two nested phases: (1) local moves — each vertex greedily joins the
// neighboring community with the largest positive modularity gain until a
// full pass makes no move; (2) aggregation — communities become vertices
// of a coarser graph.  Levels repeat until phase 1 stops improving.
// Used by bench_quality to contextualize the matching-based algorithm's
// modularity, and by tests as an independent quality oracle.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "commdet/graph/builder.hpp"
#include "commdet/graph/community_graph.hpp"
#include "commdet/graph/csr.hpp"
#include "commdet/util/timer.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct LouvainOptions {
  int max_levels = 32;
  int max_passes_per_level = 32;
  double min_gain = 1e-9;  // stop a level when a pass gains less than this
};

template <VertexId V>
struct LouvainResult {
  std::vector<V> community;
  std::int64_t num_communities = 0;
  double modularity = 0.0;
  int levels = 0;
  double seconds = 0.0;
};

template <VertexId V>
[[nodiscard]] LouvainResult<V> louvain_cluster(const CommunityGraph<V>& input,
                                               const LouvainOptions& opts = {}) {
  WallTimer timer;
  LouvainResult<V> result;
  const auto original_nv = static_cast<std::int64_t>(input.nv);
  result.community.resize(static_cast<std::size_t>(original_nv));
  for (std::int64_t v = 0; v < original_nv; ++v)
    result.community[static_cast<std::size_t>(v)] = static_cast<V>(v);
  result.num_communities = original_nv;
  if (input.total_weight == 0) {
    result.seconds = timer.seconds();
    return result;
  }

  CsrGraph<V> g = to_csr(input);
  const double w_total = static_cast<double>(input.total_weight);

  for (int level = 0; level < opts.max_levels; ++level) {
    const auto nv = static_cast<std::int64_t>(g.num_vertices());
    std::vector<std::int64_t> comm(static_cast<std::size_t>(nv));
    std::vector<double> comm_vol(static_cast<std::size_t>(nv));
    std::vector<double> vertex_vol(static_cast<std::size_t>(nv));
    for (std::int64_t v = 0; v < nv; ++v) {
      comm[static_cast<std::size_t>(v)] = v;
      double vol = 2.0 * static_cast<double>(g.self_weight[static_cast<std::size_t>(v)]);
      for (const Weight w : g.weights_of(static_cast<V>(v))) vol += static_cast<double>(w);
      vertex_vol[static_cast<std::size_t>(v)] = vol;
      comm_vol[static_cast<std::size_t>(v)] = vol;
    }

    // Phase 1: local moves.
    bool any_move = false;
    std::unordered_map<std::int64_t, double> weight_to;  // community -> edge weight from v
    for (int pass = 0; pass < opts.max_passes_per_level; ++pass) {
      bool moved_this_pass = false;
      for (std::int64_t v = 0; v < nv; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        const std::int64_t home = comm[vi];
        weight_to.clear();
        weight_to[home];  // staying is always an option
        const auto nbrs = g.neighbors_of(static_cast<V>(v));
        const auto wts = g.weights_of(static_cast<V>(v));
        for (std::size_t k = 0; k < nbrs.size(); ++k)
          weight_to[comm[static_cast<std::size_t>(nbrs[k])]] += static_cast<double>(wts[k]);

        // Gain of joining community c (with v removed from its home):
        //   k_{v,c}/W - vol(c) * vol(v) / (2 W^2)
        comm_vol[static_cast<std::size_t>(home)] -= vertex_vol[vi];
        double best_gain = weight_to[home] / w_total -
                           comm_vol[static_cast<std::size_t>(home)] * vertex_vol[vi] /
                               (2.0 * w_total * w_total);
        std::int64_t best_comm = home;
        for (const auto& [c, k_vc] : weight_to) {
          if (c == home) continue;
          const double gain = k_vc / w_total - comm_vol[static_cast<std::size_t>(c)] *
                                                   vertex_vol[vi] / (2.0 * w_total * w_total);
          if (gain > best_gain + opts.min_gain) {
            best_gain = gain;
            best_comm = c;
          }
        }
        comm[vi] = best_comm;
        comm_vol[static_cast<std::size_t>(best_comm)] += vertex_vol[vi];
        if (best_comm != home) {
          moved_this_pass = true;
          any_move = true;
        }
      }
      if (!moved_this_pass) break;
    }
    if (!any_move) break;
    result.levels = level + 1;

    // Dense-relabel the level's communities.
    std::vector<std::int64_t> dense(static_cast<std::size_t>(nv), -1);
    std::int64_t next = 0;
    for (std::int64_t v = 0; v < nv; ++v) {
      auto& d = dense[static_cast<std::size_t>(comm[static_cast<std::size_t>(v)])];
      if (d < 0) d = next++;
    }
    for (std::int64_t v = 0; v < original_nv; ++v) {
      auto& c = result.community[static_cast<std::size_t>(v)];
      c = static_cast<V>(dense[static_cast<std::size_t>(comm[static_cast<std::size_t>(c)])]);
    }
    result.num_communities = next;

    // Phase 2: aggregate into the coarser graph.
    EdgeList<V> coarse;
    coarse.num_vertices = static_cast<V>(next);
    std::vector<Weight> coarse_self(static_cast<std::size_t>(next), 0);
    for (std::int64_t v = 0; v < nv; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto cv = dense[static_cast<std::size_t>(comm[vi])];
      coarse_self[static_cast<std::size_t>(cv)] += g.self_weight[vi];
      const auto nbrs = g.neighbors_of(static_cast<V>(v));
      const auto wts = g.weights_of(static_cast<V>(v));
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const auto cu = dense[static_cast<std::size_t>(comm[static_cast<std::size_t>(nbrs[k])])];
        if (cv < cu) {
          coarse.add(static_cast<V>(cv), static_cast<V>(cu), wts[k]);
        } else if (cv == cu && static_cast<std::int64_t>(v) < static_cast<std::int64_t>(nbrs[k])) {
          coarse_self[static_cast<std::size_t>(cv)] += wts[k];
        }
      }
    }
    for (std::int64_t c = 0; c < next; ++c)
      if (coarse_self[static_cast<std::size_t>(c)] > 0)
        coarse.add(static_cast<V>(c), static_cast<V>(c), coarse_self[static_cast<std::size_t>(c)]);
    g = to_csr(build_community_graph(coarse));
  }

  // Final modularity from the coarse graph (= partition modularity).
  {
    const auto nv = static_cast<std::int64_t>(g.num_vertices());
    for (std::int64_t v = 0; v < nv; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      double vol = 2.0 * static_cast<double>(g.self_weight[vi]);
      for (const Weight w : g.weights_of(static_cast<V>(v))) vol += static_cast<double>(w);
      result.modularity += static_cast<double>(g.self_weight[vi]) / w_total -
                           (vol / (2.0 * w_total)) * (vol / (2.0 * w_total));
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace commdet
