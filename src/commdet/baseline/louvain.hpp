// Louvain compatibility facade (Blondel, Guillaume, Lambiotte,
// Lefebvre, "Fast unfolding of communities in large networks", 2008) —
// the paper's related-work comparator [17].
//
// Deprecated shim: the serial implementation that used to live here was
// superseded by the parallel PLM backend in algo/louvain.hpp, which
// runs the same two nested phases (local moves, aggregation) with
// OpenMP local moving and the shared label-keyed bucket-sort
// contraction.  This header keeps the historical LouvainOptions /
// LouvainResult / louvain_cluster() surface for bench_quality,
// bench_refinement, and the baseline tests, forwarding to
// parallel_louvain().  New code should call parallel_louvain() or
// detect_communities(g, DetectPlan::LouvainRefined()) directly.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "commdet/algo/louvain.hpp"
#include "commdet/algo/plan.hpp"
#include "commdet/graph/community_graph.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

struct LouvainOptions {
  int max_levels = 32;
  int max_passes_per_level = 32;
  double min_gain = 1e-9;  // stop a level when a pass gains less than this
};

template <VertexId V>
struct LouvainResult {
  std::vector<V> community;
  std::int64_t num_communities = 0;
  double modularity = 0.0;
  int levels = 0;
  double seconds = 0.0;
};

/// Deprecated: forwards to parallel_louvain() with refinement off (the
/// historical serial method had no post-pass).  Quality and level counts
/// match the serial implementation's behavior; labels are no longer
/// deterministic run to run (PLM's racy move schedule).  Removal
/// horizon: see DESIGN.md "Deprecations" — this shim goes away two
/// minor releases after the in-repo callers finished migrating.
template <VertexId V>
[[deprecated("use parallel_louvain() or DetectPlan::LouvainRefined(); "
             "this shim will be removed (DESIGN.md: Deprecations)")]]
[[nodiscard]] LouvainResult<V> louvain_cluster(const CommunityGraph<V>& input,
                                               const LouvainOptions& opts = {}) {
  PlmOptions plm;
  plm.max_levels = opts.max_levels;
  plm.max_passes_per_level = opts.max_passes_per_level;
  plm.min_gain = opts.min_gain;
  plm.refine = false;
  Clustering<V> c = parallel_louvain(input, plm);

  LouvainResult<V> result;
  result.community = std::move(c.community);
  result.num_communities = c.num_communities;
  result.modularity = c.final_modularity;
  result.levels = c.algorithm ? c.algorithm->iterations : 0;
  result.seconds = c.total_seconds;
  return result;
}

}  // namespace commdet
