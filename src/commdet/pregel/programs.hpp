// Vertex programs for the mini-Pregel engine: the classic Pregel-paper
// kernels plus label-propagation community detection, each verifiable
// against the library's native (OpenMP) implementations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "commdet/pregel/engine.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/util/types.hpp"

namespace commdet::pregel {

/// Connected components by minimum-label propagation (the canonical
/// Pregel example).  Converges to the minimum vertex id per component —
/// the same labels commdet::connected_components produces.
template <VertexId V>
struct MinLabelComponents {
  using Value = V;
  using Message = V;

  static void combine(Message& into, const Message& msg) {
    if (msg < into) into = msg;
  }

  void init(V vertex, Value& value) const { value = vertex; }

  template <typename Context>
  void compute(Context& ctx, V /*vertex*/, Value& value,
               std::span<const Message> inbox) const {
    V best = value;
    for (const Message m : inbox) best = std::min(best, m);
    if (ctx.superstep() == 0 || best < value) {
      value = best;
      ctx.send_to_neighbors(value);
    }
    ctx.vote_to_halt();
  }
};

/// Hop distances from a source (BFS depth), verifiable against
/// commdet::bfs_distances.
template <VertexId V>
struct HopDistance {
  using Value = std::int64_t;
  using Message = std::int64_t;

  V source = 0;

  static void combine(Message& into, const Message& msg) {
    if (msg < into) into = msg;
  }

  void init(V /*vertex*/, Value& value) const { value = -1; }

  template <typename Context>
  void compute(Context& ctx, V vertex, Value& value,
               std::span<const Message> inbox) const {
    std::int64_t best = value < 0 ? std::numeric_limits<std::int64_t>::max() : value;
    if (ctx.superstep() == 0 && vertex == source) best = 0;
    for (const Message m : inbox) best = std::min(best, m);
    if (best != std::numeric_limits<std::int64_t>::max() && (value < 0 || best < value)) {
      value = best;
      ctx.send_to_neighbors(value + 1);
    }
    ctx.vote_to_halt();
  }
};

/// Synchronous weighted label propagation (community detection): each
/// vertex adopts the label with the largest incident weight among its
/// neighbors' advertised labels, ties broken deterministically by label
/// hash.  Runs for a fixed number of rounds (synchronous LPA need not
/// converge — two-coloring oscillations — so a round cap is part of the
/// algorithm).
template <VertexId V>
struct LabelPropagation {
  using Value = V;

  struct Message {
    V label;
    Weight weight;
  };

  int rounds = 16;

  void init(V vertex, Value& value) const { value = vertex; }

  template <typename Context>
  void compute(Context& ctx, V /*vertex*/, Value& value,
               std::span<const Message> inbox) const {
    if (ctx.superstep() > 0 && !inbox.empty()) {
      // Adopt the heaviest incident label.
      std::unordered_map<std::int64_t, Weight> tally;
      for (const Message& m : inbox) tally[static_cast<std::int64_t>(m.label)] += m.weight;
      V best = value;
      Weight best_w = -1;
      std::uint64_t best_tie = 0;
      for (const auto& [label, w] : tally) {
        const auto tie = mix64(static_cast<std::uint64_t>(label));
        if (w > best_w || (w == best_w && tie < best_tie)) {
          best = static_cast<V>(label);
          best_w = w;
          best_tie = tie;
        }
      }
      value = best;
    }
    if (ctx.superstep() < rounds) {
      const auto nbrs = ctx.neighbors();
      const auto wts = ctx.weights();
      for (std::size_t k = 0; k < nbrs.size(); ++k)
        ctx.send(nbrs[k], Message{value, wts[k]});
    }
    ctx.vote_to_halt();
  }
};

/// Greedy maximal matching by handshaking (Hoepman-style): step 2 of
/// the paper's algorithm expressed in the Pregel model.  Three-superstep
/// cycles:
///   (A) every live unmatched vertex announces availability,
///   (B) each picks the heaviest announcing neighbor (ties by the same
///       hashed pair order the native matchers use) and proposes,
///   (C) mutual proposals match (both sides see the other's proposal).
/// A vertex retires when a cycle brings no announcements (all neighbors
/// matched or retired); announcements shrink monotonically, and the
/// globally best live edge is always mutual, so every cycle matches at
/// least one pair until the matching is maximal.
template <VertexId V>
struct HandshakeMatching {
  struct Value {
    V mate = kNoVertex<V>;
    V proposal = kNoVertex<V>;
    bool live = true;  // still has (potential) unmatched neighbors
  };

  struct Message {
    V from;
    std::uint8_t kind;  // 0 = available, 1 = propose
  };

  void init(V /*vertex*/, Value& value) const { value = {}; }

  template <typename Context>
  void compute(Context& ctx, V vertex, Value& value,
               std::span<const Message> inbox) const {
    if (value.mate != kNoVertex<V> || !value.live) {
      ctx.vote_to_halt();
      return;
    }
    switch (ctx.superstep() % 3) {
      case 0:  // A: announce (stay active through the whole cycle)
        for (const V u : ctx.neighbors()) ctx.send(u, Message{vertex, 0});
        break;
      case 1: {  // B: propose to the heaviest announcer
        value.proposal = kNoVertex<V>;
        const auto nbrs = ctx.neighbors();
        const auto wts = ctx.weights();
        Weight best_w = -1;
        std::uint64_t best_tie = 0;
        for (const Message& m : inbox) {
          if (m.kind != 0) continue;
          Weight w = 0;  // weight of the edge to the announcer
          for (std::size_t k = 0; k < nbrs.size(); ++k) {
            if (nbrs[k] == m.from) {
              w = wts[k];
              break;
            }
          }
          const V lo = std::min(vertex, m.from);
          const V hi = std::max(vertex, m.from);
          const auto tie = mix64((static_cast<std::uint64_t>(lo) << 32) ^
                                 static_cast<std::uint64_t>(hi));
          if (w > best_w || (w == best_w && tie < best_tie)) {
            value.proposal = m.from;
            best_w = w;
            best_tie = tie;
          }
        }
        if (value.proposal == kNoVertex<V>) {
          // Nobody announced: neighbors are all matched or retired, and
          // announcements only ever shrink — retire for good.
          value.live = false;
          ctx.vote_to_halt();
          return;
        }
        ctx.send(value.proposal, Message{vertex, 1});
        break;
      }
      case 2:  // C: mutual proposals match (symmetric on both sides)
        for (const Message& m : inbox) {
          if (m.kind == 1 && m.from == value.proposal) {
            value.mate = value.proposal;
            ctx.vote_to_halt();
            return;
          }
        }
        break;
    }
    // Unmatched and live: stay active into the next superstep.
  }
};

/// Densifies arbitrary vertex labels into [0, k); returns k.
template <VertexId V>
[[nodiscard]] std::int64_t densify_labels(std::vector<V>& labels) {
  std::unordered_map<std::int64_t, V> dense;
  V next = 0;
  for (auto& l : labels) {
    auto [it, inserted] = dense.try_emplace(static_cast<std::int64_t>(l), next);
    if (inserted) ++next;
    l = it->second;
  }
  return static_cast<std::int64_t>(next);
}

}  // namespace commdet::pregel
