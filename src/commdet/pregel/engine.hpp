// Mini-Pregel: a vertex-centric bulk-synchronous message-passing engine.
//
// The paper's Observations (Sec. VI): "Outside of the edge scoring, our
// algorithm relies on well-known primitives that exist for many
// execution models.  Much of the algorithm can be expressed through
// sparse matrix operations [...] or possibly cloud-based implementations
// through environments like Pregel [38].  The performance trade-offs for
// graph algorithms between these different environments and
// architectures remains poorly understood."
//
// This module builds that alternative execution model so the repository
// can measure those trade-offs: a faithful shared-memory Pregel —
// supersteps, per-vertex compute with an inbox of messages, vote-to-halt
// semantics, optional message combining — with OpenMP supplying the
// intra-superstep parallelism.  `programs.hpp` expresses connected
// components, hop distances, and label-propagation community detection
// on top of it; tests pin each against the library's native kernels.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "commdet/graph/csr.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/trace.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/spinlock.hpp"
#include "commdet/util/types.hpp"

namespace commdet::pregel {

/// A vertex program, CRTP-free: any type with
///   using Value = ...; using Message = ...;
///   void init(V vertex, Value& value)                       - superstep 0 setup
///   void compute(Context&, V vertex, Value&, std::span<const Message>)
/// satisfies the engine.  Inside compute(), use the context to send
/// messages and vote to halt.  A vertex with an empty inbox after
/// superstep 0 is only re-activated by an incoming message.
template <typename P, typename V>
concept VertexProgram = requires { typename P::Value; typename P::Message; };

/// Optional message combiner: folds messages addressed to one vertex.
template <typename Message>
struct MinCombiner {
  void operator()(Message& into, const Message& msg) const {
    if (msg < into) into = msg;
  }
};

struct EngineStats {
  int supersteps = 0;
  std::int64_t messages_sent = 0;
};

struct EngineOptions {
  int max_supersteps = 1000;
};

/// The engine.  Value/message state lives in dense per-vertex arrays;
/// inboxes are double-buffered between supersteps (BSP semantics: a
/// message sent in superstep s is visible in superstep s+1 only).
template <VertexId V, typename Program>
  requires VertexProgram<Program, V>
class Engine {
 public:
  using Value = typename Program::Value;
  using Message = typename Program::Message;

  /// Takes the graph by value (move in to avoid the copy): the engine
  /// outlives many temporaries in practice, so owning the adjacency is
  /// the safe default.
  Engine(CsrGraph<V> graph, Program program)
      : graph_(std::move(graph)),
        program_(std::move(program)),
        nv_(static_cast<std::int64_t>(graph_.num_vertices())),
        values_(static_cast<std::size_t>(nv_)),
        inbox_(static_cast<std::size_t>(nv_)),
        outbox_(static_cast<std::size_t>(nv_)),
        locks_(static_cast<std::size_t>(nv_)),
        halted_(static_cast<std::size_t>(nv_), 0) {}

  /// Per-vertex interface handed to compute().
  class Context {
   public:
    Context(Engine& engine, V self) noexcept : engine_(engine), self_(self) {}

    /// BSP send: delivered at the start of the next superstep.
    void send(V target, const Message& msg) {
      engine_.deliver(target, msg);
      ++engine_.local_sent_;
    }

    /// Send to every neighbor of this vertex.
    void send_to_neighbors(const Message& msg) {
      for (const V u : engine_.graph_.neighbors_of(self_)) send(u, msg);
    }

    /// Neighbors and incident weights of this vertex.
    [[nodiscard]] std::span<const V> neighbors() const {
      return engine_.graph_.neighbors_of(self_);
    }
    [[nodiscard]] std::span<const Weight> weights() const {
      return engine_.graph_.weights_of(self_);
    }

    /// Halt until re-activated by a message.
    void vote_to_halt() noexcept {
      engine_.halted_[static_cast<std::size_t>(self_)] = 1;
    }

    [[nodiscard]] int superstep() const noexcept { return engine_.superstep_; }

   private:
    Engine& engine_;
    V self_;
  };

  /// Runs to global quiescence (all halted, no messages in flight) or
  /// the superstep cap.  Throws if the cap is hit.
  EngineStats run(const EngineOptions& opts = {}) {
    EngineStats stats;
    obs::ScopedSpan span("pregel.run");
    span.attr("nv", nv_);
    obs::Counter* c_messages = obs::counter("pregel.messages_sent");
    obs::Counter* c_supersteps = obs::counter("pregel.supersteps");
    obs::Gauge* g_active = obs::gauge("pregel.max_active_vertices");

    parallel_for(nv_, [&](std::int64_t v) {
      program_.init(static_cast<V>(v), values_[static_cast<std::size_t>(v)]);
    });

    for (superstep_ = 0; superstep_ < opts.max_supersteps; ++superstep_) {
      // A vertex is active in superstep 0, or when its inbox is nonempty.
      std::int64_t active = 0;
      std::int64_t sent = 0;
      ExceptionCollector errors;
#pragma omp parallel reduction(+ : active, sent)
      {
        local_sent_ = 0;
#pragma omp for schedule(dynamic, 128)
        for (std::int64_t v = 0; v < nv_; ++v) {
          if (errors.armed()) continue;
          errors.run([&] {
            const auto vi = static_cast<std::size_t>(v);
            const bool has_mail = !inbox_[vi].empty();
            if (superstep_ > 0 && halted_[vi] != 0 && !has_mail) return;
            halted_[vi] = 0;
            ++active;
            Context ctx(*this, static_cast<V>(v));
            program_.compute(ctx, static_cast<V>(v), values_[vi],
                             std::span<const Message>(inbox_[vi]));
          });
        }
        sent += local_sent_;
      }
      errors.rethrow_if_armed();
      stats.messages_sent += sent;
      ++stats.supersteps;
      if (c_messages != nullptr) c_messages->add(sent);
      if (c_supersteps != nullptr) c_supersteps->add(1);
      if (g_active != nullptr) g_active->record(active);

      // Swap inboxes: this superstep's sends become next superstep's mail.
      parallel_for(nv_, [&](std::int64_t v) {
        const auto vi = static_cast<std::size_t>(v);
        inbox_[vi].clear();
        inbox_[vi].swap(outbox_[vi]);
      });

      if (sent == 0) {
        // Quiescent iff everyone also halted.
        const std::int64_t still_active = parallel_count(nv_, [&](std::int64_t v) {
          return halted_[static_cast<std::size_t>(v)] == 0;
        });
        if (still_active == 0) {
          span.attr("supersteps", stats.supersteps);
          span.attr("messages_sent", stats.messages_sent);
          return stats;
        }
      }
    }
    // The tracing span closes during unwinding and is marked errored.
    throw std::runtime_error("pregel: superstep cap reached without quiescence");
  }

  [[nodiscard]] const std::vector<Value>& values() const noexcept { return values_; }

 private:
  void deliver(V target, const Message& msg) {
    const auto ti = static_cast<std::size_t>(target);
    SpinlockGuard guard(locks_, ti);
    if constexpr (requires(Message& a, const Message& b) { Program::combine(a, b); }) {
      // Program-supplied combiner: fold into the single pending message.
      if (outbox_[ti].empty()) {
        outbox_[ti].push_back(msg);
      } else {
        Program::combine(outbox_[ti].front(), msg);
      }
    } else {
      outbox_[ti].push_back(msg);
    }
  }

  CsrGraph<V> graph_;
  Program program_;
  std::int64_t nv_;
  std::vector<Value> values_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::vector<Message>> outbox_;
  SpinlockTable locks_;
  std::vector<std::uint8_t> halted_;
  int superstep_ = 0;
  static thread_local std::int64_t local_sent_;
};

template <VertexId V, typename Program>
  requires VertexProgram<Program, V>
thread_local std::int64_t Engine<V, Program>::local_sent_ = 0;

}  // namespace commdet::pregel
