// The paper's *original* matching algorithm, kept as the ablation
// baseline (Sec. IV-B).
//
// "Our earlier implementation iterated in parallel across all of the
// graph's edges on each sweep and relied heavily on the Cray XMT's
// full/empty bits for synchronization of the best match for each vertex.
// This produced frequent hot spots [...] The hot spots crippled an
// explicitly locking OpenMP implementation of the same algorithm on
// Intel-based platforms."
//
// This is that explicitly locking OpenMP implementation: every sweep
// walks the whole edge array, updating per-vertex best-offer slots under
// per-vertex locks (the full/empty-bit analogue), then matches mutual
// bests.  High-degree vertices concentrate lock traffic — the hot spots
// the improved matcher removes.
#pragma once

#include <cstdint>
#include <vector>

#include "commdet/graph/community_graph.hpp"
#include "commdet/match/matching.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/spinlock.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

template <VertexId V>
class EdgeSweepMatcher {
 public:
  [[nodiscard]] Matching<V> match(const CommunityGraph<V>& g,
                                  const std::vector<Score>& scores) const {
    const auto nv = static_cast<std::int64_t>(g.nv);
    const EdgeId ne = g.num_edges();

    Matching<V> result;
    result.mate.assign(static_cast<std::size_t>(nv), kNoVertex<V>);
    auto& mate = result.mate;

    std::vector<V> best_partner(static_cast<std::size_t>(nv), kNoVertex<V>);
    std::vector<Score> best_score(static_cast<std::size_t>(nv), 0.0);
    SpinlockTable locks(static_cast<std::size_t>(nv));

    std::int64_t pairs = 0;
    for (;;) {
      ++result.sweeps;

      // Sweep all edges, bidding each positive edge into the best-offer
      // slot of both endpoints (locked updates: the hot spot).
      std::int64_t candidates = 0;
      ExceptionCollector errors;
#pragma omp parallel for schedule(static) reduction(+ : candidates)
      for (EdgeId e = 0; e < ne; ++e) {
        if (errors.armed()) continue;
        errors.run([&] {
          const auto i = static_cast<std::size_t>(e);
          if (scores[i] <= 0.0) return;
          const V a = g.efirst[i];
          const V b = g.esecond[i];
          if (mate[static_cast<std::size_t>(a)] != kNoVertex<V> ||
              mate[static_cast<std::size_t>(b)] != kNoVertex<V>)
            return;
          ++candidates;
          const auto offer = make_offer(scores[i], a, b);
          bid(locks, best_partner, best_score, a, b, offer);
          bid(locks, best_partner, best_score, b, a, offer);
        });
      }
      errors.rethrow_if_armed();
      if (candidates == 0) break;

      // Match mutual bests; the total order guarantees at least one
      // locally-dominant edge exists, so every sweep makes progress.
      std::int64_t matched_this_sweep = 0;
#pragma omp parallel for schedule(static) reduction(+ : matched_this_sweep)
      for (std::int64_t u = 0; u < nv; ++u) {
        const V p = best_partner[static_cast<std::size_t>(u)];
        if (p == kNoVertex<V> || p < static_cast<V>(u)) continue;  // pair handled from the low side
        if (best_partner[static_cast<std::size_t>(p)] == static_cast<V>(u)) {
          mate[static_cast<std::size_t>(u)] = p;
          mate[static_cast<std::size_t>(p)] = static_cast<V>(u);
          ++matched_this_sweep;
        }
      }
      pairs += matched_this_sweep;

      // Clear the offer slots for the next sweep.
      parallel_for(nv, [&](std::int64_t v) {
        best_partner[static_cast<std::size_t>(v)] = kNoVertex<V>;
        best_score[static_cast<std::size_t>(v)] = 0.0;
      });
    }

    result.num_pairs = pairs;
    return result;
  }

 private:
  static void bid(SpinlockTable& locks, std::vector<V>& best_partner,
                  std::vector<Score>& best_score, V at, V partner,
                  const Offer<V>& offer) {
    SpinlockGuard guard(locks, static_cast<std::size_t>(at));
    const V current = best_partner[static_cast<std::size_t>(at)];
    if (current != kNoVertex<V>) {
      const auto held = make_offer(best_score[static_cast<std::size_t>(at)], at, current);
      if (!offer.beats(held)) return;
    }
    best_partner[static_cast<std::size_t>(at)] = partner;
    best_score[static_cast<std::size_t>(at)] = offer.score;
  }
};

}  // namespace commdet
