// Matching result type and shared helpers.
//
// A matching pairs neighboring communities for contraction.  All matchers
// produce pairs only across positively-scored edges, and guarantee
// maximality over those edges: at completion no positive-score edge has
// both endpoints unmatched (paper Sec. III/IV-B).
#pragma once

#include <cstdint>
#include <vector>

#include "commdet/graph/community_graph.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

template <VertexId V>
struct Matching {
  /// mate[v] is v's partner, or kNoVertex<V> when unmatched.
  std::vector<V> mate;
  std::int64_t num_pairs = 0;
  int sweeps = 0;  // parallel passes used (diagnostic)
};

/// The total order on match offers: higher score wins; ties broken by the
/// vertex indices (paper Sec. IV-B).  Antisymmetric and identical from
/// both endpoints' viewpoints, which is what makes the claim arbitration
/// race-free in outcome.
///
/// The index tie-break goes through a hash of the endpoint pair rather
/// than raw (lo, hi) order: on graphs with many equal scores (e.g. any
/// unweighted regular region at the first level), lexicographic ties
/// chain deferrals so that only one pair can match per sweep — O(|V|)
/// sweeps on a path.  Hashing keeps the order deterministic and total
/// while making tie winners locally independent, restoring the expected
/// O(log |V|) sweep count.  Raw indices remain the final tie-break, so
/// the order is total even across hash collisions.
template <VertexId V>
struct Offer {
  Score score = 0.0;
  std::uint64_t tie = 0;
  V lo = kNoVertex<V>;
  V hi = kNoVertex<V>;

  [[nodiscard]] bool valid() const noexcept { return lo != kNoVertex<V>; }

  [[nodiscard]] bool beats(const Offer& other) const noexcept {
    if (!other.valid()) return valid();
    if (!valid()) return false;
    if (score != other.score) return score > other.score;
    if (tie != other.tie) return tie < other.tie;
    if (lo != other.lo) return lo < other.lo;
    return hi < other.hi;
  }
};

template <VertexId V>
[[nodiscard]] Offer<V> make_offer(Score s, V a, V b) noexcept {
  const V lo = a < b ? a : b;
  const V hi = a < b ? b : a;
  const auto key = (static_cast<std::uint64_t>(lo) << 32) ^ static_cast<std::uint64_t>(hi) ^
                   (static_cast<std::uint64_t>(hi) >> 32 << 17);
  return Offer<V>{s, mix64(key), lo, hi};
}

/// Checks structural validity: symmetric, irreflexive, in range.
template <VertexId V>
[[nodiscard]] bool is_valid_matching(const Matching<V>& m) {
  const auto nv = static_cast<std::int64_t>(m.mate.size());
  std::int64_t matched = 0;
  for (std::int64_t v = 0; v < nv; ++v) {
    const V p = m.mate[static_cast<std::size_t>(v)];
    if (p == kNoVertex<V>) continue;
    if (p < 0 || static_cast<std::int64_t>(p) >= nv) return false;
    if (p == static_cast<V>(v)) return false;
    if (m.mate[static_cast<std::size_t>(p)] != static_cast<V>(v)) return false;
    ++matched;
  }
  return matched == 2 * m.num_pairs;
}

/// Maximality over positive scores: no edge with score > 0 joins two
/// unmatched vertices.
template <VertexId V>
[[nodiscard]] bool is_maximal_matching(const CommunityGraph<V>& g,
                                       const std::vector<Score>& scores,
                                       const Matching<V>& m) {
  const EdgeId ne = g.num_edges();
  for (EdgeId e = 0; e < ne; ++e) {
    const auto i = static_cast<std::size_t>(e);
    if (scores[i] <= 0.0) continue;
    if (m.mate[static_cast<std::size_t>(g.efirst[i])] == kNoVertex<V> &&
        m.mate[static_cast<std::size_t>(g.esecond[i])] == kNoVertex<V>)
      return false;
  }
  return true;
}

/// Total score of the matched edges (each matched pair counted once).
template <VertexId V>
[[nodiscard]] Score matching_weight(const CommunityGraph<V>& g,
                                    const std::vector<Score>& scores,
                                    const Matching<V>& m) {
  Score total = 0.0;
  const EdgeId ne = g.num_edges();
  for (EdgeId e = 0; e < ne; ++e) {
    const auto i = static_cast<std::size_t>(e);
    if (m.mate[static_cast<std::size_t>(g.efirst[i])] == g.esecond[i]) total += scores[i];
  }
  return total;
}

}  // namespace commdet
