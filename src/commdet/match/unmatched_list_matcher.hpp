// The paper's improved greedy heavy maximal matching (Sec. IV-B).
//
// We "maintain an array of currently unmatched vertices [and] parallelize
// across that array, searching each unmatched vertex u's bucket of
// adjacent edges for the highest-scored unmatched neighbor v.  Once each
// unmatched vertex u finds its best current match, the vertex checks if
// the other side v (also unmatched) has a better match.  We induce a total
// ordering by considering first score and then the vertex indices.  If the
// current vertex u's choice is better, it claims both sides using locks
// [...].  Another pass across the unmatched vertex list checks if the
// claims succeeded.  If not and there was some unmatched neighbor, the
// vertex u remains on the list for another pass."
//
// Every edge lives in exactly one bucket, so every positive edge is
// proposed by its owning endpoint; at convergence (empty list) the
// matching is maximal over positive edges.  Each sweep either matches at
// least one pair (the globally best outstanding offer cannot be beaten)
// or permanently retires list entries, so the sweep count is finite and
// in social-network graphs small, giving effectively O(|E|) work.
//
// The greedy selection keeps the Preis property: the matching's total
// score is within a factor of two of the maximum-weight matching over the
// positive-score subgraph.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "commdet/graph/community_graph.hpp"
#include "commdet/match/matching.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/util/atomics.hpp"
#include "commdet/util/compact.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/spinlock.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

template <VertexId V>
class UnmatchedListMatcher {
 public:
  [[nodiscard]] Matching<V> match(const CommunityGraph<V>& g,
                                  const std::vector<Score>& scores) const {
    const auto nv = static_cast<std::int64_t>(g.nv);
    Matching<V> result;
    result.mate.assign(static_cast<std::size_t>(nv), kNoVertex<V>);
    auto& mate = result.mate;

    std::vector<V> proposal(static_cast<std::size_t>(nv), kNoVertex<V>);
    std::vector<Score> proposal_score(static_cast<std::size_t>(nv), 0.0);
    SpinlockTable locks(static_cast<std::size_t>(nv));

    // The unmatched-vertex array: initially every vertex.
    std::vector<V> unmatched(static_cast<std::size_t>(nv));
    std::iota(unmatched.begin(), unmatched.end(), V{0});

    // Sharded counters (null when no metrics registry is installed):
    // resolved once here, incremented from inside the parallel passes
    // without serializing — each thread hits its own cache line.
    obs::Counter* c_proposals = obs::counter("match.proposals");
    obs::Counter* c_deferrals = obs::counter("match.deferrals");
    obs::Counter* c_claim_conflicts = obs::counter("match.claim_conflicts");
    obs::Counter* c_sweeps = obs::counter("match.sweeps");
    obs::Counter* c_retries = obs::counter("match.list_retries");

    std::int64_t pairs = 0;
    while (!unmatched.empty()) {
      ++result.sweeps;

      // Pass 1: each listed vertex scans its own bucket for the best
      // positively-scored unmatched neighbor.  Dynamic schedule: bucket
      // sizes follow the degree distribution.
      parallel_for_dynamic(static_cast<std::int64_t>(unmatched.size()), [&](std::int64_t k) {
        const V u = unmatched[static_cast<std::size_t>(k)];
        const auto [bb, be] = g.bucket(u);
        Offer<V> best;
        V best_target = kNoVertex<V>;
        for (EdgeId e = bb; e < be; ++e) {
          const auto i = static_cast<std::size_t>(e);
          if (scores[i] <= 0.0) continue;
          const V v = g.esecond[i];
          if (atomic_load(mate[static_cast<std::size_t>(v)]) != kNoVertex<V>) continue;
          const auto offer = make_offer(scores[i], u, v);
          if (offer.beats(best)) {
            best = offer;
            best_target = v;
          }
        }
        proposal[static_cast<std::size_t>(u)] = best_target;
        proposal_score[static_cast<std::size_t>(u)] = best.score;
        if (c_proposals != nullptr && best_target != kNoVertex<V>) c_proposals->add(1);
      });

      // Pass 2: claim.  u defers when the other side holds a strictly
      // better offer of its own; otherwise it takes both sides under the
      // pair's locks (ascending order, deadlock-free).
      std::int64_t matched_this_sweep = 0;
      ExceptionCollector errors;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : matched_this_sweep)
      for (std::int64_t k = 0; k < static_cast<std::int64_t>(unmatched.size()); ++k) {
        if (errors.armed()) continue;
        errors.run([&] {
          const V u = unmatched[static_cast<std::size_t>(k)];
          const V v = proposal[static_cast<std::size_t>(u)];
          if (v == kNoVertex<V>) return;
          const auto mine = make_offer(proposal_score[static_cast<std::size_t>(u)], u, v);
          const V vs_target = proposal[static_cast<std::size_t>(v)];
          if (vs_target != kNoVertex<V>) {
            const auto theirs =
                make_offer(proposal_score[static_cast<std::size_t>(v)], v, vs_target);
            if (theirs.beats(mine)) {
              if (c_deferrals != nullptr) c_deferrals->add(1);
              return;  // let the better side act
            }
          }
          locks.lock_pair(static_cast<std::size_t>(u), static_cast<std::size_t>(v));
          if (mate[static_cast<std::size_t>(u)] == kNoVertex<V> &&
              mate[static_cast<std::size_t>(v)] == kNoVertex<V>) {
            mate[static_cast<std::size_t>(u)] = v;
            mate[static_cast<std::size_t>(v)] = u;
            ++matched_this_sweep;
          } else if (c_claim_conflicts != nullptr) {
            // Lost the race: a side was claimed between the scan and the
            // lock — the contention the paper's sweep count amortizes.
            c_claim_conflicts->add(1);
          }
          locks.unlock_pair(static_cast<std::size_t>(u), static_cast<std::size_t>(v));
        });
      }
      errors.rethrow_if_armed();
      pairs += matched_this_sweep;

      // Pass 3: the claim check.  A vertex stays listed only while it is
      // unmatched and saw a potential partner this sweep.
      unmatched = parallel_compact(std::span<const V>(unmatched), [&](V u) {
        return mate[static_cast<std::size_t>(u)] == kNoVertex<V> &&
               proposal[static_cast<std::size_t>(u)] != kNoVertex<V>;
      });
      if (c_retries != nullptr) c_retries->add(static_cast<std::int64_t>(unmatched.size()));
    }

    if (c_sweeps != nullptr) c_sweeps->add(result.sweeps);
    result.num_pairs = pairs;
    return result;
  }
};

}  // namespace commdet
