// Sequential greedy matching in descending score order (Preis-style
// 1/2-approximation of the maximum-weight matching).
//
// Deterministic reference implementation: tests compare the parallel
// matchers' weight and maximality against it, and the factor-2 bound is
// checked against a brute-force optimum on small graphs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "commdet/graph/community_graph.hpp"
#include "commdet/match/matching.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

template <VertexId V>
class SequentialGreedyMatcher {
 public:
  [[nodiscard]] Matching<V> match(const CommunityGraph<V>& g,
                                  const std::vector<Score>& scores) const {
    const EdgeId ne = g.num_edges();
    Matching<V> result;
    result.mate.assign(static_cast<std::size_t>(g.nv), kNoVertex<V>);
    result.sweeps = 1;

    std::vector<EdgeId> order;
    order.reserve(static_cast<std::size_t>(ne));
    for (EdgeId e = 0; e < ne; ++e)
      if (scores[static_cast<std::size_t>(e)] > 0.0) order.push_back(e);

    std::sort(order.begin(), order.end(), [&](EdgeId x, EdgeId y) {
      const auto ox = make_offer(scores[static_cast<std::size_t>(x)], g.efirst[static_cast<std::size_t>(x)],
                                 g.esecond[static_cast<std::size_t>(x)]);
      const auto oy = make_offer(scores[static_cast<std::size_t>(y)], g.efirst[static_cast<std::size_t>(y)],
                                 g.esecond[static_cast<std::size_t>(y)]);
      return ox.beats(oy);
    });

    for (const EdgeId e : order) {
      const auto i = static_cast<std::size_t>(e);
      const V a = g.efirst[i];
      const V b = g.esecond[i];
      if (result.mate[static_cast<std::size_t>(a)] == kNoVertex<V> &&
          result.mate[static_cast<std::size_t>(b)] == kNoVertex<V>) {
        result.mate[static_cast<std::size_t>(a)] = b;
        result.mate[static_cast<std::size_t>(b)] = a;
        ++result.num_pairs;
      }
    }
    return result;
  }
};

}  // namespace commdet
