// The scoring primitive: one independent calculation per community-graph
// edge, stored in an |E|-long array of doubles (paper Sec. IV-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "commdet/graph/community_graph.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/robust/fault_injection.hpp"
#include "commdet/score/scorers.hpp"
#include "commdet/util/parallel.hpp"
#include "commdet/util/types.hpp"

namespace commdet {

/// Summary of a scoring pass, used by the driver's termination test.
struct ScoreSummary {
  EdgeId positive_edges = 0;
  Score max_score = 0.0;
};

/// Fills `scores[e]` for every edge of g.  `scores` is resized to match.
template <VertexId V, EdgeScorer S>
ScoreSummary score_edges(const CommunityGraph<V>& g, const S& scorer,
                         std::vector<Score>& scores) {
  COMMDET_FAULT_POINT(fault::kScore, Phase::kScore);
  const EdgeId ne = g.num_edges();
  scores.resize(static_cast<std::size_t>(ne));

  ExceptionCollector errors;
  EdgeId positive = 0;
  Score max_score = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : positive) reduction(max : max_score)
  for (EdgeId e = 0; e < ne; ++e) {
    if (errors.armed()) continue;
    errors.run([&] {
      const auto i = static_cast<std::size_t>(e);
      const auto c = static_cast<std::size_t>(g.efirst[i]);
      const auto d = static_cast<std::size_t>(g.esecond[i]);
      const Score s = scorer.score(EdgeContext{
          .edge_weight = g.eweight[i],
          .volume_c = g.volume[c],
          .volume_d = g.volume[d],
          .self_c = g.self_weight[c],
          .self_d = g.self_weight[d],
          .total_weight = g.total_weight,
      });
      scores[i] = s;
      if (s > 0.0) {
        ++positive;
        if (s > max_score) max_score = s;
      }
    });
  }
  errors.rethrow_if_armed();

  // Phase-granularity metrics: the per-edge work is already reduced by
  // the OpenMP loop above, so one add per call suffices (and costs
  // nothing when no registry is installed).
  if (obs::Counter* c = obs::counter("score.edges_scored")) c->add(ne);
  if (obs::Counter* c = obs::counter("score.positive_edges")) c->add(positive);

  return {positive, max_score};
}

}  // namespace commdet
