// Edge scoring policies (paper Sec. III / IV-B).
//
// An edge {c, d}'s score is the change in the optimization metric if
// communities c and d merged.  Each score is an independent computation
// needing only the edge weight, the two communities' volumes/self weights,
// and the total graph weight W.  The driver is templated on the scorer
// ("our algorithm is agnostic towards edge scoring methods"), so custom
// metrics plug in as small function objects satisfying EdgeScorer.
#pragma once

#include <algorithm>
#include <concepts>

#include "commdet/util/types.hpp"

namespace commdet {

/// Per-edge inputs to a scorer.
struct EdgeContext {
  Weight edge_weight;   // w_cd: weight between the two communities
  Weight volume_c;      // vol(c) = 2*self(c) + cut(c)
  Weight volume_d;
  Weight self_c;        // weight collapsed inside c
  Weight self_d;
  Weight total_weight;  // W, invariant across levels
};

template <typename S>
concept EdgeScorer = requires(const S s, const EdgeContext& ctx) {
  { s.score(ctx) } -> std::convertible_to<Score>;
};

/// Newman–Girvan modularity delta.
///
///   Q = sum_c [ self(c)/W  -  (vol(c) / 2W)^2 ]
///   dQ(c,d) = w_cd / W  -  vol(c) * vol(d) / (2 W^2)
struct ModularityScorer {
  [[nodiscard]] Score score(const EdgeContext& ctx) const noexcept {
    const auto w = static_cast<double>(ctx.total_weight);
    return static_cast<double>(ctx.edge_weight) / w -
           static_cast<double>(ctx.volume_c) * static_cast<double>(ctx.volume_d) /
               (2.0 * w * w);
  }
};

/// Negated conductance delta: conductance is minimized, so the change is
/// negated to fit the maximizing driver (Sec. III).
///
///   phi(c) = cut(c) / min(vol(c), 2W - vol(c)),   cut(c) = vol(c) - 2 self(c)
///   score(c,d) = phi(c) + phi(d) - phi(c u d)
struct ConductanceScorer {
  [[nodiscard]] Score score(const EdgeContext& ctx) const noexcept {
    const double two_w = 2.0 * static_cast<double>(ctx.total_weight);
    const auto phi = [two_w](Weight vol, Weight cut) {
      if (cut == 0) return 0.0;
      const double denom = std::min(static_cast<double>(vol), two_w - static_cast<double>(vol));
      return denom > 0.0 ? static_cast<double>(cut) / denom : 0.0;
    };
    const Weight cut_c = ctx.volume_c - 2 * ctx.self_c;
    const Weight cut_d = ctx.volume_d - 2 * ctx.self_d;
    const Weight vol_m = ctx.volume_c + ctx.volume_d;
    const Weight cut_m = cut_c + cut_d - 2 * ctx.edge_weight;
    return phi(ctx.volume_c, cut_c) + phi(ctx.volume_d, cut_d) - phi(vol_m, cut_m);
  }
};

/// Raw edge weight: the classic heavy-edge matching criterion from
/// multilevel graph partitioning.  Always positive, so coverage or an
/// external constraint must terminate the driver.
struct HeavyEdgeScorer {
  [[nodiscard]] Score score(const EdgeContext& ctx) const noexcept {
    return static_cast<double>(ctx.edge_weight);
  }
};

/// Modularity with a resolution parameter (Reichardt–Bornholdt):
///
///   dQ_gamma(c,d) = w_cd / W  -  gamma * vol(c) * vol(d) / (2 W^2)
///
/// gamma = 1 is plain modularity; gamma > 1 resolves smaller communities
/// (counteracting the resolution limit that merges small cliques into
/// ring neighbors), gamma < 1 coarsens.  Exercises the driver's
/// "agnostic towards edge scoring" design point with a parameterized
/// metric.
struct ResolutionModularityScorer {
  double gamma = 1.0;

  [[nodiscard]] Score score(const EdgeContext& ctx) const noexcept {
    const auto w = static_cast<double>(ctx.total_weight);
    return static_cast<double>(ctx.edge_weight) / w -
           gamma * static_cast<double>(ctx.volume_c) * static_cast<double>(ctx.volume_d) /
               (2.0 * w * w);
  }
};

static_assert(EdgeScorer<ModularityScorer>);
static_assert(EdgeScorer<ConductanceScorer>);
static_assert(EdgeScorer<HeavyEdgeScorer>);
static_assert(EdgeScorer<ResolutionModularityScorer>);

}  // namespace commdet
