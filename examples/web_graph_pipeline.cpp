// Web-graph pipeline: the paper's full R-MAT evaluation pipeline at
// laptop scale (the role of rmat-24-16 / uk-2007-05).
//
//   $ ./web_graph_pipeline [scale] [edge-factor]
//
// Steps: generate a scale-free R-MAT multigraph, accumulate multi-edges,
// extract the largest connected component, then run community detection
// with the paper's DIMACS-style coverage >= 0.5 termination, printing the
// per-level telemetry (including the contraction share of runtime the
// paper reports as 40-80%).
#include <cstdio>
#include <cstdlib>

#include "commdet/cc/connected_components.hpp"
#include "commdet/core/agglomerate.hpp"
#include "commdet/gen/rmat.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/graph/stats.hpp"
#include "commdet/util/timer.hpp"

int main(int argc, char** argv) {
  using V = std::int32_t;

  commdet::RmatParams params;  // a=0.55, b=c=0.1, d=0.25: the paper's values
  params.scale = argc > 1 ? std::atoi(argv[1]) : 16;
  params.edge_factor = argc > 2 ? std::atoi(argv[2]) : 8;
  params.seed = 24;

  std::printf("R-MAT: scale %d, edge factor %d (a=%.2f b=%.2f c=%.2f d=%.2f)\n",
              params.scale, params.edge_factor, params.a, params.b, params.c, params.d);

  commdet::WallTimer timer;
  const auto raw = commdet::generate_rmat<V>(params);
  std::printf("  generated %lld raw edges in %.2fs\n",
              static_cast<long long>(raw.num_edges()), timer.seconds());

  timer.reset();
  const auto lcc = commdet::largest_component(raw);
  std::printf("  largest component: %lld of %lld vertices (%.2fs)\n",
              static_cast<long long>(lcc.num_vertices),
              static_cast<long long>(raw.num_vertices), timer.seconds());

  timer.reset();
  const auto g = commdet::build_community_graph(lcc);
  const auto stats = commdet::graph_stats(g);
  std::printf("  community graph: %lld vertices, %lld unique edges, "
              "max degree %lld (%.2fs)\n",
              static_cast<long long>(stats.num_vertices),
              static_cast<long long>(stats.num_edges),
              static_cast<long long>(stats.max_degree), timer.seconds());

  commdet::AgglomerationOptions opts;
  opts.min_coverage = 0.5;  // the paper's performance-experiment criterion
  const auto result = commdet::agglomerate(g, commdet::ModularityScorer{}, opts);

  std::printf("\ncommunity detection: %.3fs, %d levels, termination: %s\n",
              result.total_seconds, result.num_levels(),
              std::string(commdet::to_string(result.reason)).c_str());
  std::printf("  %lld communities, modularity %.4f, coverage %.4f\n",
              static_cast<long long>(result.num_communities), result.final_modularity,
              result.final_coverage);
  std::printf("  contraction share of phase time: %.0f%% (paper reports 40-80%%)\n",
              100.0 * result.contraction_fraction());
  std::printf("\n  %-5s %12s %12s %10s %8s %9s %9s %9s\n", "level", "communities",
              "edges", "matched", "coverage", "score(s)", "match(s)", "contr(s)");
  for (const auto& l : result.levels)
    std::printf("  %-5d %12lld %12lld %10lld %8.3f %9.4f %9.4f %9.4f\n", l.level,
                static_cast<long long>(l.nv_before), static_cast<long long>(l.ne_before),
                static_cast<long long>(l.pairs_matched), l.coverage, l.score_seconds,
                l.match_seconds, l.contract_seconds);

  const double rate = static_cast<double>(stats.num_edges) / result.total_seconds;
  std::printf("\n  processing rate: %.2e input edges/second\n", rate);
  return 0;
}
