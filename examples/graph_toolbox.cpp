// Graph toolbox: generate, convert, and inspect graph files with the
// library's generators and I/O codecs.
//
//   $ ./graph_toolbox generate rmat --scale 16 --edgefactor 8 -o g.txt
//   $ ./graph_toolbox generate sbm --vertices 100000 --blocks 500 -o g.bin
//   $ ./graph_toolbox generate ws|ba|er ... -o file
//   $ ./graph_toolbox convert g.txt g.graph      # formats by extension
//   $ ./graph_toolbox stats g.bin
//   $ ./graph_toolbox deltas g.txt --count 1000 --seed 7 -o d.txt
//       # random update stream against g: deletes of existing edges and
//       # inserts of fresh ones, in the io/delta_text.hpp format
//   $ ./graph_toolbox apply g.txt d.txt -o g2.txt
//       # applies a delta file to a graph and writes the result
//
// Output extensions: .txt/.el (edge list), .bin (binary), .graph (METIS).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "commdet/cc/connected_components.hpp"
#include "commdet/graph/delta.hpp"
#include "commdet/io/delta_text.hpp"
#include "commdet/util/rng.hpp"
#include "commdet/gen/barabasi_albert.hpp"
#include "commdet/gen/erdos_renyi.hpp"
#include "commdet/gen/planted_partition.hpp"
#include "commdet/gen/rmat.hpp"
#include "commdet/gen/watts_strogatz.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/graph/stats.hpp"
#include "commdet/io/binary.hpp"
#include "commdet/io/edge_list_text.hpp"
#include "commdet/io/matrix_market.hpp"
#include "commdet/io/metis.hpp"

namespace {

using V = std::int64_t;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

commdet::EdgeList<V> load(const std::string& path) {
  if (ends_with(path, ".graph")) return commdet::read_metis<V>(path);
  if (ends_with(path, ".mtx")) return commdet::read_matrix_market<V>(path);
  if (ends_with(path, ".bin")) return commdet::read_edge_list_binary<V>(path);
  return commdet::read_edge_list_text<V>(path);
}

void save(const commdet::EdgeList<V>& g, const std::string& path) {
  if (ends_with(path, ".graph")) {
    // METIS needs deduplicated, loop-free edges: run through the builder.
    const auto cg = commdet::build_community_graph(g);
    commdet::EdgeList<V> clean;
    clean.num_vertices = cg.num_vertices();
    for (commdet::EdgeId e = 0; e < cg.num_edges(); ++e) {
      const auto i = static_cast<std::size_t>(e);
      clean.add(cg.efirst[i], cg.esecond[i], cg.eweight[i]);
    }
    commdet::write_metis(clean, path);
  } else if (ends_with(path, ".bin")) {
    commdet::write_edge_list_binary(g, path);
  } else {
    commdet::write_edge_list_text(g, path);
  }
  std::printf("wrote %lld edges to %s\n", static_cast<long long>(g.num_edges()),
              path.c_str());
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  graph_toolbox generate rmat [--scale s] [--edgefactor f] [--seed k] -o out\n"
               "  graph_toolbox generate sbm [--vertices n] [--blocks b] [--seed k] -o out\n"
               "  graph_toolbox generate er  [--vertices n] [--edges m] [--seed k] -o out\n"
               "  graph_toolbox generate ws  [--vertices n] [--k half-degree] [--beta p] -o out\n"
               "  graph_toolbox generate ba  [--vertices n] [--m edges-per-vertex] -o out\n"
               "  graph_toolbox convert <in> <out>\n"
               "  graph_toolbox stats <file>\n"
               "  graph_toolbox deltas <graph> [--count n] [--insert-frac p] [--seed k] -o out\n"
               "  graph_toolbox apply <graph> <deltas> -o out\n");
  std::exit(2);
}

int64_t flag_i(int& i, int argc, char** argv) {
  if (i + 1 >= argc) usage();
  return std::atoll(argv[++i]);
}

double flag_d(int& i, int argc, char** argv) {
  if (i + 1 >= argc) usage();
  return std::atof(argv[++i]);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") {
      if (argc < 3) usage();
      const std::string model = argv[2];
      std::string out;
      std::int64_t vertices = 1 << 14, blocks = 128, edges = 1 << 17;
      std::int64_t scale = 14, edgefactor = 8, k = 4, m = 4;
      double beta = 0.1;
      std::uint64_t seed = 1;
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--scale") scale = flag_i(i, argc, argv);
        else if (a == "--edgefactor") edgefactor = flag_i(i, argc, argv);
        else if (a == "--vertices") vertices = flag_i(i, argc, argv);
        else if (a == "--blocks") blocks = flag_i(i, argc, argv);
        else if (a == "--edges") edges = flag_i(i, argc, argv);
        else if (a == "--k") k = flag_i(i, argc, argv);
        else if (a == "--m") m = flag_i(i, argc, argv);
        else if (a == "--beta") beta = flag_d(i, argc, argv);
        else if (a == "--seed") seed = static_cast<std::uint64_t>(flag_i(i, argc, argv));
        else if (a == "-o") { if (i + 1 >= argc) usage(); out = argv[++i]; }
        else usage();
      }
      if (out.empty()) usage();
      commdet::EdgeList<V> g;
      if (model == "rmat") {
        commdet::RmatParams p;
        p.scale = static_cast<int>(scale);
        p.edge_factor = static_cast<int>(edgefactor);
        p.seed = seed;
        g = commdet::generate_rmat<V>(p);
      } else if (model == "sbm") {
        commdet::PlantedPartitionParams p;
        p.num_vertices = vertices;
        p.num_blocks = blocks;
        p.seed = seed;
        g = commdet::generate_planted_partition<V>(p);
      } else if (model == "er") {
        g = commdet::generate_erdos_renyi<V>(vertices, edges, seed);
      } else if (model == "ws") {
        commdet::WattsStrogatzParams p;
        p.num_vertices = vertices;
        p.neighbors_per_side = k;
        p.rewire_probability = beta;
        p.seed = seed;
        g = commdet::generate_watts_strogatz<V>(p);
      } else if (model == "ba") {
        commdet::BarabasiAlbertParams p;
        p.num_vertices = vertices;
        p.edges_per_vertex = m;
        p.seed = seed;
        g = commdet::generate_barabasi_albert<V>(p);
      } else {
        usage();
      }
      save(g, out);
    } else if (cmd == "convert") {
      if (argc != 4) usage();
      save(load(argv[2]), argv[3]);
    } else if (cmd == "deltas") {
      if (argc < 3) usage();
      std::string out;
      std::int64_t count = 1000;
      double insert_frac = 0.5;
      std::uint64_t seed = 1;
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--count") count = flag_i(i, argc, argv);
        else if (a == "--insert-frac") insert_frac = flag_d(i, argc, argv);
        else if (a == "--seed") seed = static_cast<std::uint64_t>(flag_i(i, argc, argv));
        else if (a == "-o") { if (i + 1 >= argc) usage(); out = argv[++i]; }
        else usage();
      }
      if (out.empty()) usage();
      const auto g = commdet::build_community_graph(load(argv[2]));
      const auto nv = static_cast<std::uint64_t>(g.nv);
      const auto ne = static_cast<std::uint64_t>(g.num_edges());
      const commdet::CounterRng rng(seed, 42);
      commdet::DeltaBatch<V> batch;
      for (std::int64_t i = 0; i < count; ++i) {
        const auto c = static_cast<std::uint64_t>(4 * i);
        if (rng.uniform(c) < insert_frac || ne == 0) {
          batch.insert(static_cast<V>(rng.below(c + 1, nv)),
                       static_cast<V>(rng.below(c + 2, nv)),
                       1 + static_cast<commdet::Weight>(rng.below(c + 3, 3)));
        } else {
          const auto e = static_cast<std::size_t>(rng.below(c + 1, ne));
          batch.erase(g.efirst[e], g.esecond[e]);
        }
      }
      commdet::write_delta_text(batch, out);
      std::printf("wrote %lld deltas to %s\n", static_cast<long long>(batch.size()),
                  out.c_str());
    } else if (cmd == "apply") {
      if (argc < 4) usage();
      std::string out;
      for (int i = 4; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-o") { if (i + 1 >= argc) usage(); out = argv[++i]; }
        else usage();
      }
      if (out.empty()) usage();
      const auto g = commdet::build_community_graph(load(argv[2]));
      const auto batch = commdet::read_delta_text<V>(argv[3]);
      const auto applied = commdet::apply_delta(g, batch);
      commdet::EdgeList<V> el;
      el.num_vertices = applied.graph.num_vertices();
      for (commdet::EdgeId e = 0; e < applied.graph.num_edges(); ++e) {
        const auto i = static_cast<std::size_t>(e);
        el.add(applied.graph.efirst[i], applied.graph.esecond[i], applied.graph.eweight[i]);
      }
      for (V v = 0; v < applied.graph.nv; ++v)
        if (applied.graph.self_weight[static_cast<std::size_t>(v)] > 0)
          el.add(v, v, applied.graph.self_weight[static_cast<std::size_t>(v)]);
      save(el, out);
      std::printf("applied %lld deltas (%lld effective, %lld vertices touched)\n",
                  static_cast<long long>(applied.report.applied),
                  static_cast<long long>(applied.report.effective),
                  static_cast<long long>(applied.touched.size()));
    } else if (cmd == "stats") {
      if (argc != 3) usage();
      const auto el = load(argv[2]);
      const auto g = commdet::build_community_graph(el);
      const auto s = commdet::graph_stats(g);
      const auto labels = commdet::connected_components(el);
      std::printf("file:            %s\n", argv[2]);
      std::printf("vertices:        %lld\n", static_cast<long long>(s.num_vertices));
      std::printf("raw edges:       %lld\n", static_cast<long long>(el.num_edges()));
      std::printf("unique edges:    %lld\n", static_cast<long long>(s.num_edges));
      std::printf("total weight:    %lld (self-loop weight %lld)\n",
                  static_cast<long long>(s.total_weight),
                  static_cast<long long>(s.self_loop_weight));
      std::printf("degree:          min %lld / mean %.2f / max %lld\n",
                  static_cast<long long>(s.min_degree), s.mean_degree,
                  static_cast<long long>(s.max_degree));
      std::printf("isolated:        %lld\n", static_cast<long long>(s.isolated_vertices));
      std::printf("components:      %lld\n",
                  static_cast<long long>(commdet::count_components(labels)));
    } else {
      usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
