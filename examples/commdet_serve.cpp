// commdet_serve: long-lived streaming community-detection daemon.
//
// Speaks the serve/protocol.hpp line protocol over stdin/stdout
// (default), a Unix socket (--socket), or local TCP (--port).  Edge
// deltas stream in, micro-batches apply on a dedicated writer thread,
// and queries are answered from epoch-published immutable snapshots.
// Every committed batch is WAL-logged before it is acknowledged, and
// snapshots rotate through the checkpoint generation machinery, so:
//
//   * SIGKILL: restart with the same --dir recovers the exact committed
//     epoch (snapshot + WAL replay, bit-for-bit membership).
//   * SIGTERM/SIGINT: cooperative interrupt -> drain, final snapshot,
//     clean exit 0 (a second signal kills the process the normal way).
//
// Startup: when --dir already holds a dynamic state, the daemon
// recovers from it (the graph file is ignored); otherwise it loads the
// graph, runs the initial detection, and starts at epoch 0.  Once
// serving it prints "READY epoch=<e> replayed=<n>" on stdout.
//
// Exit codes match detect_communities: 0 ok, 2 usage, 1 unstructured
// exception, exit_code_for() categories (3..9) for structured errors.
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <omp.h>

#include "commdet/core/detect.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/io/binary.hpp"
#include "commdet/io/edge_list_text.hpp"
#include "commdet/io/matrix_market.hpp"
#include "commdet/io/metis.hpp"
#include "commdet/obs/json.hpp"
#include "commdet/obs/report.hpp"
#include "commdet/platform/platform_info.hpp"
#include "commdet/robust/checkpoint.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/serve/service.hpp"
#include "commdet/serve/session.hpp"

namespace {

using V = std::int64_t;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

commdet::EdgeList<V> load(const std::string& path) {
  if (ends_with(path, ".graph")) return commdet::read_metis<V>(path);
  if (ends_with(path, ".mtx")) return commdet::read_matrix_market<V>(path);
  if (ends_with(path, ".bin")) return commdet::read_edge_list_binary<V>(path);
  return commdet::read_edge_list_text<V>(path);
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: commdet_serve <graph-file> --dir <state-dir>\n"
               "       [--socket path | --port p]          (default: stdin/stdout)\n"
               "       [--metric modularity|conductance|heavy|resolution] [--gamma g]\n"
               "       [--refine flat|vcycle] [--threads t]\n"
               "       [--halo k|auto] [--refresh-margin x] [--refresh-every n]\n"
               "       [--batch-count n] [--batch-ms m] [--save-every n] [--keep k]\n"
               "       [--no-fsync] [--report file.json]\n");
  std::exit(2);
}

/// First SIGINT/SIGTERM requests a cooperative stop (drain + final
/// snapshot); restoring the default action means a second signal kills
/// the process the normal way.
extern "C" void on_stop_signal(int sig) {
  commdet::request_interrupt();
  std::signal(sig, SIG_DFL);
}

int report_structured_error(const commdet::Error& err, int exit_code) {
  commdet::obs::JsonWriter w;
  w.begin_object();
  w.key("error");
  w.begin_object();
  w.key("code");
  w.value(commdet::to_string(err.code));
  w.key("phase");
  w.value(commdet::to_string(err.phase));
  w.key("detail");
  w.value(err.detail);
  w.key("exit_code");
  w.value(exit_code);
  w.end_object();
  w.end_object();
  std::fprintf(stderr, "%s\n", w.take().c_str());
  return exit_code;
}

void write_all(int fd, const std::string& s) {
  const char* p = s.data();
  std::size_t left = s.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; the session loop notices on read
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

/// Buffered newline framing over a poll-able fd, with a timeout so the
/// loop can notice the interrupt flag even when the peer is silent.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  /// 1 = got a line, 0 = timeout, -1 = EOF/error (buffer drained first).
  int next(std::string& line, int timeout_ms) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buf_, 0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        buf_.erase(0, nl + 1);
        return 1;
      }
      if (eof_) {
        if (buf_.empty()) return -1;
        line = std::move(buf_);  // unterminated final line still counts
        buf_.clear();
        return 1;
      }
      struct pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr == 0) return 0;
      if (pr < 0) {
        if (errno == EINTR) return 0;
        eof_ = true;
        continue;
      }
      char chunk[65536];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        eof_ = true;
        continue;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

std::atomic<bool> g_closing{false};

/// One protocol session over (in_fd, out_fd); returns when the peer
/// hangs up, QUIT/SHUTDOWN arrives, or the daemon is stopping.
void run_session(commdet::serve::CommunityService<V>& svc, const std::string& peer,
                 int in_fd, int out_fd) {
  commdet::serve::Session<V> session(svc, peer);
  FdLineReader reader(in_fd);
  std::string line;
  while (!g_closing.load(std::memory_order_relaxed) && !commdet::interrupt_requested()) {
    const int r = reader.next(line, 200);
    if (r < 0) break;
    if (r == 0) continue;
    const auto reply = session.handle_line(line);
    if (reply.line.has_value()) write_all(out_fd, *reply.line + "\n");
    if (reply.shutdown) {
      commdet::request_interrupt();
      g_closing.store(true, std::memory_order_relaxed);
    }
    if (reply.close) break;
  }
}

int serve_socket(commdet::serve::CommunityService<V>& svc, int listen_fd) {
  std::vector<std::thread> conns;
  std::int64_t next_id = 0;
  while (!g_closing.load(std::memory_order_relaxed) && !commdet::interrupt_requested()) {
    struct pollfd pfd{listen_fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    const std::string peer = "conn-" + std::to_string(next_id++);
    conns.emplace_back([&svc, peer, conn] {
      run_session(svc, peer, conn, conn);
      ::close(conn);
    });
  }
  ::close(listen_fd);
  for (auto& t : conns) t.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string graph_path = argv[1];
  std::string socket_path;
  std::string report_path;
  std::string metric = "modularity";
  int port = 0;
  commdet::serve::ServeOptions sopts;
  commdet::DynamicOptions& dopts = sopts.dynamic;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--dir") {
      sopts.dir = next();
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--port") {
      port = std::stoi(next());
    } else if (arg == "--metric") {
      metric = next();
    } else if (arg == "--gamma") {
      dopts.detect.resolution_gamma = std::stod(next());
    } else if (arg == "--refine") {
      const auto mode = next();
      if (mode == "flat") dopts.detect.refine_mode = commdet::DetectOptions::RefineMode::kFlat;
      else if (mode == "vcycle") dopts.detect.refine_mode = commdet::DetectOptions::RefineMode::kVCycle;
      else usage();
    } else if (arg == "--threads") {
      omp_set_num_threads(std::stoi(next()));
    } else if (arg == "--halo") {
      const auto h = next();
      dopts.halo_hops = h == "auto" ? -1 : std::stoi(h);
    } else if (arg == "--refresh-margin") {
      dopts.refresh_margin = std::stod(next());
    } else if (arg == "--refresh-every") {
      dopts.refresh_every = std::stoi(next());
    } else if (arg == "--batch-count") {
      sopts.batch_max_deltas = std::stoll(next());
    } else if (arg == "--batch-ms") {
      sopts.batch_max_delay_seconds = std::stod(next()) / 1000.0;
    } else if (arg == "--save-every") {
      sopts.save_every_batches = std::stoi(next());
    } else if (arg == "--keep") {
      sopts.keep_generations = std::stoi(next());
    } else if (arg == "--no-fsync") {
      sopts.fsync_wal = false;
    } else if (arg == "--report") {
      report_path = next();
    } else {
      usage();
    }
  }
  if (sopts.dir.empty()) {
    std::fprintf(stderr, "error: --dir is required (state + WAL root)\n");
    return 2;
  }
  if (!socket_path.empty() && port != 0) {
    std::fprintf(stderr, "error: --socket and --port are mutually exclusive\n");
    return 2;
  }

  if (metric == "modularity") dopts.detect.scorer = commdet::ScorerKind::kModularity;
  else if (metric == "conductance") dopts.detect.scorer = commdet::ScorerKind::kConductance;
  else if (metric == "heavy") dopts.detect.scorer = commdet::ScorerKind::kHeavyEdge;
  else if (metric == "resolution") dopts.detect.scorer = commdet::ScorerKind::kResolutionModularity;
  else usage();

  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  try {
    // Recover when the state directory already holds generations;
    // otherwise cold-start from the graph file.
    std::unique_ptr<commdet::serve::CommunityService<V>> svc;
    const bool have_state = !commdet::list_checkpoints(sopts.dir).empty();
    if (have_state) {
      auto opened = commdet::serve::CommunityService<V>::open(sopts);
      if (!opened.has_value())
        return report_structured_error(opened.error(),
                                       commdet::exit_code_for(opened.error().code));
      svc = std::move(opened.value());
    } else {
      auto created = commdet::serve::CommunityService<V>::create(
          commdet::build_community_graph(load(graph_path)), sopts);
      if (!created.has_value())
        return report_structured_error(created.error(),
                                       commdet::exit_code_for(created.error().code));
      svc = std::move(created.value());
    }

    std::printf("READY epoch=%lld replayed=%lld\n",
                static_cast<long long>(svc->snapshot()->epoch),
                static_cast<long long>(svc->replayed_batches()));
    std::fflush(stdout);

    if (!socket_path.empty()) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) { std::perror("socket"); return 1; }
      struct sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (socket_path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "error: socket path too long\n");
        return 2;
      }
      std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
      ::unlink(socket_path.c_str());
      if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0 ||
          ::listen(fd, 64) < 0) {
        std::perror("bind/listen");
        return 1;
      }
      serve_socket(*svc, fd);
      ::unlink(socket_path.c_str());
    } else if (port != 0) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) { std::perror("socket"); return 1; }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      struct sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local only
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0 ||
          ::listen(fd, 64) < 0) {
        std::perror("bind/listen");
        return 1;
      }
      serve_socket(*svc, fd);
    } else {
      run_session(*svc, "stdin", 0, 1);  // EOF = graceful shutdown
    }

    svc->shutdown();  // drain + final snapshot

    if (!report_path.empty()) {
      const auto platform = commdet::detect_platform();
      commdet::obs::RunReportInputs inputs;
      inputs.platform = &platform;
      inputs.dynamic = &svc->dynamics().stats();
      inputs.info = {{"tool", "commdet_serve"},
                     {"dir", sopts.dir},
                     {"metric", metric},
                     {"replayed", std::to_string(svc->replayed_batches())},
                     {"queries", std::to_string(svc->queries_served())}};
      commdet::obs::write_text_file(
          report_path, commdet::obs::run_report_json(svc->dynamics().clustering(), inputs));
      std::fprintf(stderr, "run report written to %s\n", report_path.c_str());
    }
    std::printf("BYE epoch=%lld\n",
                static_cast<long long>(svc->dynamics().epoch()));
    return 0;
  } catch (const commdet::CommdetError& e) {
    return report_structured_error(e.error(), commdet::exit_code_for(e.code()));
  } catch (const std::exception& e) {
    return report_structured_error(
        commdet::Error{commdet::ErrorCode::kInternal, commdet::Phase::kUnknown, e.what()}, 1);
  }
}
