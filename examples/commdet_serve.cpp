// commdet_serve: long-lived streaming community-detection daemon.
//
// Speaks the serve/protocol.hpp line protocol over stdin/stdout
// (default), a Unix socket (--socket), or local TCP (--port).  Edge
// deltas stream in, micro-batches apply on a dedicated writer thread,
// and queries are answered from epoch-published immutable snapshots.
// Every committed batch is WAL-logged before it is acknowledged, and
// snapshots rotate through the checkpoint generation machinery, so:
//
//   * SIGKILL: restart with the same --dir recovers the exact committed
//     epoch (snapshot + WAL replay, bit-for-bit membership).
//   * SIGTERM/SIGINT: cooperative interrupt -> drain, final snapshot,
//     clean exit 0 (a second signal kills the process the normal way).
//
// Replication (serve/replication.hpp + serve/follower.hpp):
//
//   * writer + followers: `--replicate-to <endpoint>` (repeatable)
//     ships every committed WAL record to follower daemons started
//     with `--follower`; a follower bootstraps via snapshot transfer,
//     serves bounded-stale reads (`--max-lag`), and refuses mutations.
//   * failover: the PROMOTE verb on a follower finalizes its
//     replicated state and reopens it as the writer, resuming from the
//     last committed epoch; the daemon keeps serving across the swap.
//
// Self-healing cluster mode (serve/cluster.hpp):
//
//   * `--peer <endpoint>` (repeated, identical ordered list on every
//     node; one entry must be this node's own --socket/--port) turns on
//     lease-based failure detection and deterministic leader election.
//     The writer stamps HELLO/HB frames with its term and a lease
//     (--lease-ms); when a follower's lease expires it polls the peers
//     with `CLUSTER peek` and the reachable node with the highest
//     (epoch, wal_seq, rank) self-promotes — no human PROMOTE needed.
//     Survivors retarget to the new writer in place: its higher-term
//     HELLO re-arms their lease and catch-up reuses the normal
//     snapshot/WAL-tail path, no restart.
//   * a revived old writer is fenced (`ERR stale-term`) by every peer
//     that observed the higher term; the supervisor notices, wipes the
//     stale state, and rejoins as a cold follower of the new writer.
//
// Startup: when --dir already holds a dynamic state, the daemon
// recovers from it (the graph file is ignored); otherwise it loads the
// graph, runs the initial detection, and starts at epoch 0.  Followers
// may start with no graph and no state at all.  Once serving it prints
// "READY epoch=<e> replayed=<n>" on stdout.
//
// Exit codes match detect_communities: 0 ok, 2 usage, 1 unstructured
// exception, exit_code_for() categories (3..9) for structured errors.
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <omp.h>

#include "commdet/core/detect.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/io/binary.hpp"
#include "commdet/io/edge_list_text.hpp"
#include "commdet/io/matrix_market.hpp"
#include "commdet/io/metis.hpp"
#include "commdet/obs/eventlog.hpp"
#include "commdet/obs/json.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/report.hpp"
#include "commdet/obs/telemetry.hpp"
#include "commdet/platform/platform_info.hpp"
#include "commdet/robust/checkpoint.hpp"
#include "commdet/robust/error.hpp"
#include "commdet/serve/cluster.hpp"
#include "commdet/serve/follower.hpp"
#include "commdet/serve/service.hpp"
#include "commdet/serve/session.hpp"

namespace {

using V = std::int64_t;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

commdet::EdgeList<V> load(const std::string& path) {
  if (ends_with(path, ".graph")) return commdet::read_metis<V>(path);
  if (ends_with(path, ".mtx")) return commdet::read_matrix_market<V>(path);
  if (ends_with(path, ".bin")) return commdet::read_edge_list_binary<V>(path);
  return commdet::read_edge_list_text<V>(path);
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: commdet_serve [graph-file] --dir <state-dir>\n"
               "       [--socket path | --port p]          (default: stdin/stdout)\n"
               "       [--follower] [--replicate-to endpoint]... [--max-lag n]\n"
               "       [--peer endpoint]... [--lease-ms m]\n"
               "       [--metric modularity|conductance|heavy|resolution] [--gamma g]\n"
               "       [--refine flat|vcycle] [--threads t]\n"
               "       [--halo k|auto] [--refresh-margin x] [--refresh-every n]\n"
               "       [--refresh-algo agglo|lp-sync|lp-async|louvain]\n"
               "       [--batch-count n] [--batch-ms m] [--save-every n] [--keep k]\n"
               "       [--session-idle-timeout s] [--max-line bytes]\n"
               "       [--no-fsync] [--report file.json]\n"
               "       [--no-telemetry] [--slow-query-ms m]\n"
               "       [--event-log path] [--event-log-bytes n] [--event-log-keep k]\n"
               "  --follower      run as a read-only replica (no graph file needed;\n"
               "                  a writer with --replicate-to this endpoint feeds it)\n"
               "  --replicate-to  follower endpoint: Unix socket path or local TCP port\n"
               "  --max-lag       refuse follower reads more than n epochs stale (-1 = off)\n"
               "  --peer          cluster mode: the full ordered peer list (same on every\n"
               "                  node, one entry = this node's own --socket/--port);\n"
               "                  enables leases, automatic election, and fencing\n"
               "  --lease-ms      writer lease duration in cluster mode (default 3000)\n"
               "  --no-telemetry  disable metrics + event log (METRICS still answers,\n"
               "                  with live gauges only)\n"
               "  --slow-query-ms log a slow_query event for verbs above m ms (0 = off)\n"
               "  --refresh-algo  backend for triggered refresh ticks (default agglo;\n"
               "                  lp-sync trades a little quality for O(E) ticks)\n"
               "  --event-log     structured JSONL event path (default <dir>/events.jsonl)\n");
  std::exit(2);
}

/// First SIGINT/SIGTERM requests a cooperative stop (drain + final
/// snapshot); restoring the default action means a second signal kills
/// the process the normal way.
extern "C" void on_stop_signal(int sig) {
  commdet::request_interrupt();
  std::signal(sig, SIG_DFL);
}

int report_structured_error(const commdet::Error& err, int exit_code) {
  commdet::obs::JsonWriter w;
  w.begin_object();
  w.key("error");
  w.begin_object();
  w.key("code");
  w.value(commdet::to_string(err.code));
  w.key("phase");
  w.value(commdet::to_string(err.phase));
  w.key("detail");
  w.value(err.detail);
  w.key("exit_code");
  w.value(exit_code);
  w.end_object();
  w.end_object();
  std::fprintf(stderr, "%s\n", w.take().c_str());
  return exit_code;
}

void write_all(int fd, const std::string& s) {
  const char* p = s.data();
  std::size_t left = s.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; the session loop notices on read
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

/// Buffered newline framing over a poll-able fd, built on the bounded
/// serve::LineFramer, with a timeout so the loop can notice the
/// interrupt flag even when the peer is silent.
class FdLineReader {
 public:
  /// `keep_partial_on_eof`: stdio sessions treat an unterminated final
  /// line as a last request; socket sessions discard it (a mid-line
  /// disconnect is torn input, not a request).
  FdLineReader(int fd, bool keep_partial_on_eof, std::size_t max_line_bytes)
      : fd_(fd), keep_partial_(keep_partial_on_eof), framer_(max_line_bytes) {}

  /// 1 = got a line, 0 = timeout, -1 = EOF/error (buffer drained
  /// first), -2 = line exceeded the bound (hostile/broken client).
  int next(std::string& line, int timeout_ms) {
    for (;;) {
      if (framer_.overflowed()) return -2;
      if (auto l = framer_.next_line()) {
        line = std::move(*l);
        return 1;
      }
      if (framer_.overflowed()) return -2;  // terminated but oversized
      if (eof_) {
        if (keep_partial_ && framer_.has_partial()) {
          line = framer_.take_partial();  // unterminated final line still counts
          return 1;
        }
        return -1;
      }
      struct pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr == 0) return 0;
      if (pr < 0) {
        if (errno == EINTR) return 0;
        eof_ = true;
        continue;
      }
      char chunk[65536];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        eof_ = true;
        continue;
      }
      if (!framer_.feed(chunk, static_cast<std::size_t>(n))) return -2;
    }
  }

 private:
  int fd_;
  bool keep_partial_;
  commdet::serve::LineFramer framer_;
  bool eof_ = false;
};

// ----- daemon-wide role state (promotion swaps follower -> writer) -----

struct Roles {
  std::shared_ptr<commdet::serve::CommunityService<V>> writer;
  std::shared_ptr<commdet::serve::FollowerService<V>> follower;
};

std::mutex g_roles_mu;
Roles g_roles;
std::atomic<std::int64_t> g_roles_gen{0};  // bumped on promotion/demotion
commdet::serve::ServeOptions g_sopts;      // promotion reopens with these
commdet::serve::FollowerOptions g_fopts;   // demotion reopens with these
commdet::serve::ClusterOptions g_copts;    // empty peers = cluster mode off
std::unique_ptr<commdet::serve::ClusterSupervisor> g_supervisor;
std::atomic<bool> g_closing{false};
double g_slow_query_seconds = 0.0;         // sessions log slow_query above this

Roles current_roles() {
  std::lock_guard<std::mutex> g(g_roles_mu);
  return g_roles;
}

/// Demotion cleanup: a fenced writer may hold locally-committed epochs
/// that never replicated (shipping is asynchronous), and those would
/// diverge from the new writer's history.  Drop every state artifact
/// and rejoin cold via snapshot bootstrap.  The live event log (and its
/// rotations) is the one thing kept — it is an audit trail, not state.
void wipe_state_dir(const std::string& dir) {
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("events", 0) == 0) continue;
    std::error_code rec;
    std::filesystem::remove_all(it->path(), rec);
  }
}

/// PROMOTE (manual verb or election win): finalize the follower's
/// replicated state and reopen its directory as the writer.
/// Serialized; concurrent sessions observe the generation bump and
/// rebind.  `new_term > 0` promotes into that cluster term (persisted
/// before the writer opens, so its first HELLO already carries it);
/// 0 = legacy unclustered promote, unless cluster mode computes one.
/// Returns the reply line.
std::string promote_follower(std::int64_t new_term = 0) {
  std::lock_guard<std::mutex> g(g_roles_mu);
  if (g_roles.writer)
    return commdet::serve::protocol_error_line(
        commdet::Error{commdet::ErrorCode::kInvalidArgument, commdet::Phase::kInput,
                       "already the writer"});
  if (new_term <= 0 && g_copts.enabled()) {
    // Manual PROMOTE on a clustered follower still fences the old
    // writer: take a term above everything this node has observed.
    new_term = std::max(g_roles.follower->term(),
                        commdet::serve::load_cluster_term(g_sopts.dir)) +
               1;
  }
  auto fin = g_roles.follower->finalize_for_promotion();
  if (!fin.has_value()) return commdet::serve::protocol_error_line(fin.error());
  if (new_term > 0) {
    commdet::serve::store_cluster_term(g_sopts.dir, new_term);
    g_sopts.replication.term = new_term;
    if (g_copts.enabled()) {
      g_sopts.replication.lease_seconds = g_copts.lease_seconds;
      g_sopts.replication.endpoints = g_copts.replication_endpoints();
    }
  }
  commdet::serve::ServeOptions sopts = g_sopts;
  auto opened = commdet::serve::CommunityService<V>::open(sopts);
  if (!opened.has_value()) return commdet::serve::protocol_error_line(opened.error());
  g_roles.writer = std::move(opened.value());
  g_roles.follower.reset();  // sessions holding a ref keep it alive until rebind
  g_roles_gen.fetch_add(1, std::memory_order_release);
  std::fprintf(stderr, "PROMOTED epoch=%lld term=%lld\n",
               static_cast<long long>(fin.value()), static_cast<long long>(new_term));
  return "OK promoted " + std::to_string(fin.value());
}

/// A peer fenced this writer with `observed_term`: step down.  The
/// local history may contain unreplicated commits the new writer never
/// saw, so the state directory is wiped and the node rejoins cold as a
/// follower — the new writer's next dial bootstraps it by snapshot.
void demote_writer(std::int64_t observed_term) {
  std::lock_guard<std::mutex> g(g_roles_mu);
  if (!g_roles.writer) return;
  g_roles.writer->shutdown();  // stop shipping + batch thread first
  wipe_state_dir(g_sopts.dir);
  commdet::serve::store_cluster_term(g_sopts.dir, observed_term);
  auto opened = commdet::serve::FollowerService<V>::open(g_fopts);
  if (!opened.has_value()) {
    std::fprintf(stderr, "DEMOTE FAILED: %s\n", opened.error().detail.c_str());
    return;  // keep the (stopped) writer; the supervisor retries next tick
  }
  g_roles.follower = std::move(opened.value());
  g_roles.writer.reset();
  g_roles_gen.fetch_add(1, std::memory_order_release);
  std::fprintf(stderr, "DEMOTED term=%lld\n", static_cast<long long>(observed_term));
}

/// Answers the CLUSTER verb with daemon-wide context (sessions install
/// this; without it they only know node-local state).
std::string cluster_info_reply(const std::string& arg) {
  const Roles roles = current_roles();
  commdet::serve::ClusterPeek p;
  p.rank = g_copts.self_rank;
  double lease_remaining = 0.0;
  std::int64_t fenced = 0;
  if (roles.writer) {
    p.role = "writer";
    p.term = roles.writer->cluster_term();
    p.epoch = roles.writer->snapshot()->epoch;
    fenced = roles.writer->fenced_term();
  } else if (roles.follower) {
    p.role = g_supervisor && g_supervisor->electing() ? "candidate" : "follower";
    p.term = roles.follower->term();
    p.epoch = roles.follower->epoch();
    lease_remaining = std::max(0.0, roles.follower->lease_remaining_seconds());
  } else {
    p.role = "none";  // mid-handoff; next poll sees the new role
  }
  p.wal_seq = p.epoch;  // one WAL record per committed epoch
  if (arg == "peek") return commdet::serve::format_cluster_peek(p);
  commdet::obs::JsonWriter w;
  w.begin_object();
  w.key("role");
  w.value(p.role);
  w.key("term");
  w.value(p.term);
  w.key("epoch");
  w.value(p.epoch);
  w.key("wal_seq");
  w.value(p.wal_seq);
  w.key("rank");
  w.value(p.rank);
  if (roles.follower) {
    w.key("lease_remaining");
    w.value(lease_remaining);
  }
  if (roles.writer) {
    w.key("fenced_term");
    w.value(fenced);
  }
  w.key("elections_won");
  w.value(g_supervisor ? g_supervisor->elections_won() : 0);
  w.key("election_rounds_aborted");
  w.value(g_supervisor ? g_supervisor->rounds_aborted() : 0);
  w.key("lease_seconds");
  w.value(g_copts.lease_seconds);
  w.key("peers");
  w.begin_array();
  for (std::size_t i = 0; i < g_copts.peers.size(); ++i) {
    w.begin_object();
    w.key("rank");
    w.value(static_cast<std::int64_t>(i));
    w.key("endpoint");
    w.value(g_copts.peers[i]);
    w.key("self");
    w.value(static_cast<int>(i) == g_copts.self_rank);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return "OK " + w.take();
}

/// One replication connection (a writer dialed in and sent REPL HELLO):
/// every line goes through the follower's replay state machine.
void run_repl_connection(std::shared_ptr<commdet::serve::FollowerService<V>> follower,
                         const std::string& first_line, int in_fd, int out_fd,
                         std::size_t max_line_bytes) {
  const std::int64_t gen = g_roles_gen.load(std::memory_order_acquire);
  FdLineReader reader(in_fd, /*keep_partial_on_eof=*/false, max_line_bytes);
  typename commdet::serve::FollowerService<V>::ReplConn conn;  // this dial's HELLO term
  std::string line = first_line;
  for (;;) {
    if (auto reply = follower->handle_repl_line(line, conn))
      write_all(out_fd, *reply + "\n");
    for (;;) {
      if (g_closing.load(std::memory_order_relaxed) || commdet::interrupt_requested() ||
          g_roles_gen.load(std::memory_order_acquire) != gen) {
        follower->repl_disconnected();
        return;  // promoted (or stopping): this node no longer replays
      }
      const int r = reader.next(line, 200);
      if (r == 1) break;
      if (r == 0) continue;
      follower->repl_disconnected();  // EOF / oversized: drop partial record
      return;
    }
  }
}

/// One protocol session over (in_fd, out_fd); returns when the peer
/// hangs up, QUIT/SHUTDOWN arrives, the idle deadline fires, or the
/// daemon is stopping.  A leading "REPL HELLO" hands the connection to
/// the replication state machine instead.
void run_session(const std::string& peer, int in_fd, int out_fd, bool is_socket,
                 double idle_timeout_seconds, std::size_t max_line_bytes) {
  std::int64_t gen = g_roles_gen.load(std::memory_order_acquire);
  Roles roles = current_roles();
  auto make_session = [&peer, &roles]() {
    commdet::serve::Session<V> s =
        roles.writer
            ? commdet::serve::Session<V>(*roles.writer, peer, g_slow_query_seconds)
            : commdet::serve::Session<V>(*roles.follower, peer, g_slow_query_seconds);
    if (g_copts.enabled()) s.set_cluster_info(cluster_info_reply);
    return s;
  };
  commdet::serve::Session<V> session = make_session();
  FdLineReader reader(in_fd, /*keep_partial_on_eof=*/!is_socket, max_line_bytes);
  std::string line;
  bool first = true;
  auto last_activity = std::chrono::steady_clock::now();
  while (!g_closing.load(std::memory_order_relaxed) && !commdet::interrupt_requested()) {
    const int r = reader.next(line, 200);
    if (r == -2) {
      // Bounded line length: a client streaming an unbounded "line"
      // gets a typed error and a closed connection, not an unbounded
      // buffer.
      write_all(out_fd,
                commdet::serve::protocol_error_line(commdet::Error{
                    commdet::ErrorCode::kIoParse, commdet::Phase::kInput,
                    peer + ": line exceeds " + std::to_string(max_line_bytes) +
                        " bytes, closing"}) +
                    "\n");
      break;
    }
    if (r < 0) break;
    if (r == 0) {
      if (idle_timeout_seconds > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() - last_activity)
                  .count() > idle_timeout_seconds) {
        write_all(out_fd,
                  commdet::serve::protocol_error_line(commdet::Error{
                      commdet::ErrorCode::kStalled, commdet::Phase::kInput,
                      peer + ": idle beyond " + std::to_string(idle_timeout_seconds) +
                          "s, closing"}) +
                      "\n");
        break;
      }
      continue;
    }
    last_activity = std::chrono::steady_clock::now();
    if (first) {
      first = false;
      if (line.compare(0, 10, "REPL HELLO") == 0) {
        if (roles.follower) {
          run_repl_connection(roles.follower, line, in_fd, out_fd, max_line_bytes);
        } else {
          write_all(out_fd,
                    commdet::serve::protocol_error_line(commdet::Error{
                        commdet::ErrorCode::kReplicationBroken, commdet::Phase::kInput,
                        "this endpoint is the writer, not a follower"}) +
                        "\n");
        }
        return;
      }
    }
    if (g_roles_gen.load(std::memory_order_acquire) != gen) {
      gen = g_roles_gen.load(std::memory_order_acquire);
      roles = current_roles();
      session = make_session();  // rebind after promotion
    }
    auto reply = session.handle_line(line);
    if (reply.promote) {
      const std::string answer = promote_follower();
      write_all(out_fd, answer + "\n");
      gen = g_roles_gen.load(std::memory_order_acquire);
      roles = current_roles();
      session = make_session();
      continue;
    }
    if (reply.line.has_value()) write_all(out_fd, *reply.line + "\n");
    if (reply.shutdown) {
      commdet::request_interrupt();
      g_closing.store(true, std::memory_order_relaxed);
    }
    if (reply.close) break;
  }
}

int serve_socket(int listen_fd, double idle_timeout_seconds, std::size_t max_line_bytes) {
  std::vector<std::thread> conns;
  std::int64_t next_id = 0;
  while (!g_closing.load(std::memory_order_relaxed) && !commdet::interrupt_requested()) {
    struct pollfd pfd{listen_fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    const std::string peer = "conn-" + std::to_string(next_id++);
    conns.emplace_back([peer, conn, idle_timeout_seconds, max_line_bytes] {
      run_session(peer, conn, conn, /*is_socket=*/true, idle_timeout_seconds,
                  max_line_bytes);
      ::close(conn);
    });
  }
  ::close(listen_fd);
  for (auto& t : conns) t.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string graph_path;
  std::string socket_path;
  std::string report_path;
  std::string metric = "modularity";
  int port = 0;
  bool follower_mode = false;
  std::int64_t max_lag = -1;
  double idle_timeout_seconds = -1.0;  // <0: default per transport
  std::size_t max_line_bytes = std::size_t{1} << 20;
  bool telemetry = true;
  std::string event_log_path;  // empty: <dir>/events.jsonl
  commdet::obs::EventLogOptions eopts;
  commdet::serve::ServeOptions sopts;
  commdet::DynamicOptions& dopts = sopts.dynamic;

  int i = 1;
  if (argv[1][0] != '-') {
    graph_path = argv[1];
    i = 2;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--dir") {
      sopts.dir = next();
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--port") {
      port = std::stoi(next());
    } else if (arg == "--follower") {
      follower_mode = true;
    } else if (arg == "--replicate-to") {
      sopts.replication.endpoints.push_back(next());
    } else if (arg == "--max-lag") {
      max_lag = std::stoll(next());
    } else if (arg == "--peer") {
      g_copts.peers.push_back(next());
    } else if (arg == "--lease-ms") {
      g_copts.lease_seconds = std::stod(next()) / 1000.0;
    } else if (arg == "--metric") {
      metric = next();
    } else if (arg == "--gamma") {
      dopts.detect.resolution_gamma = std::stod(next());
    } else if (arg == "--refine") {
      const auto mode = next();
      if (mode == "flat") dopts.detect.refine_mode = commdet::DetectOptions::RefineMode::kFlat;
      else if (mode == "vcycle") dopts.detect.refine_mode = commdet::DetectOptions::RefineMode::kVCycle;
      else usage();
    } else if (arg == "--threads") {
      omp_set_num_threads(std::stoi(next()));
    } else if (arg == "--halo") {
      const auto h = next();
      dopts.halo_hops = h == "auto" ? -1 : std::stoi(h);
    } else if (arg == "--refresh-margin") {
      dopts.refresh_margin = std::stod(next());
    } else if (arg == "--refresh-every") {
      dopts.refresh_every = std::stoi(next());
    } else if (arg == "--refresh-algo") {
      const auto p = commdet::DetectPlan::FromName(next());
      if (!p.has_value()) usage();
      dopts.refresh_plan = *p;
    } else if (arg == "--batch-count") {
      sopts.batch_max_deltas = std::stoll(next());
    } else if (arg == "--batch-ms") {
      sopts.batch_max_delay_seconds = std::stod(next()) / 1000.0;
    } else if (arg == "--save-every") {
      sopts.save_every_batches = std::stoi(next());
    } else if (arg == "--keep") {
      sopts.keep_generations = std::stoi(next());
    } else if (arg == "--session-idle-timeout") {
      idle_timeout_seconds = std::stod(next());
    } else if (arg == "--max-line") {
      max_line_bytes = static_cast<std::size_t>(std::stoll(next()));
    } else if (arg == "--no-fsync") {
      sopts.fsync_wal = false;
    } else if (arg == "--no-telemetry") {
      telemetry = false;
    } else if (arg == "--slow-query-ms") {
      g_slow_query_seconds = std::stod(next()) / 1000.0;
    } else if (arg == "--event-log") {
      event_log_path = next();
    } else if (arg == "--event-log-bytes") {
      eopts.max_bytes = static_cast<std::uint64_t>(std::stoll(next()));
    } else if (arg == "--event-log-keep") {
      eopts.max_files = std::stoi(next());
    } else if (arg == "--report") {
      report_path = next();
    } else {
      usage();
    }
  }
  if (sopts.dir.empty()) {
    std::fprintf(stderr, "error: --dir is required (state + WAL root)\n");
    return 2;
  }
  if (!socket_path.empty() && port != 0) {
    std::fprintf(stderr, "error: --socket and --port are mutually exclusive\n");
    return 2;
  }
  if (follower_mode && !sopts.replication.endpoints.empty()) {
    std::fprintf(stderr, "error: --follower and --replicate-to are mutually exclusive\n");
    return 2;
  }
  if (!g_copts.peers.empty()) {
    if (!sopts.replication.endpoints.empty()) {
      std::fprintf(stderr, "error: --peer and --replicate-to are mutually exclusive "
                           "(cluster mode derives the replication targets)\n");
      return 2;
    }
    if (socket_path.empty() && port == 0) {
      std::fprintf(stderr, "error: --peer requires --socket or --port\n");
      return 2;
    }
    if (g_copts.peers.size() < 2) {
      std::fprintf(stderr, "error: cluster mode needs at least two --peer entries\n");
      return 2;
    }
    const std::string self_ep = socket_path.empty() ? std::to_string(port) : socket_path;
    for (std::size_t i = 0; i < g_copts.peers.size(); ++i)
      if (g_copts.peers[i] == self_ep) g_copts.self_rank = static_cast<int>(i);
    if (g_copts.self_rank < 0) {
      std::fprintf(stderr, "error: own endpoint '%s' is not in the --peer list\n",
                   self_ep.c_str());
      return 2;
    }
  }

  if (metric == "modularity") dopts.detect.scorer = commdet::ScorerKind::kModularity;
  else if (metric == "conductance") dopts.detect.scorer = commdet::ScorerKind::kConductance;
  else if (metric == "heavy") dopts.detect.scorer = commdet::ScorerKind::kHeavyEdge;
  else if (metric == "resolution") dopts.detect.scorer = commdet::ScorerKind::kResolutionModularity;
  else usage();

  // Sessions over stdio have no idle deadline by default (interactive
  // and test use); socket sessions default to 15 minutes.
  const bool using_socket = !socket_path.empty() || port != 0;
  if (idle_timeout_seconds < 0.0) idle_timeout_seconds = using_socket ? 900.0 : 0.0;

  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  // Telemetry is on by default: a process-wide metrics registry (the
  // services resolve counter/histogram handles against it when they are
  // constructed, so it must be installed first) plus a size-rotated
  // structured event log under the state directory.  --no-telemetry
  // leaves both slots empty; every obs:: lookup then returns nullptr
  // and the hot paths skip recording entirely.
  commdet::obs::MetricsRegistry registry;
  std::unique_ptr<commdet::obs::MetricsSession> metrics_session;
  std::unique_ptr<commdet::obs::EventLog> event_log;
  std::unique_ptr<commdet::obs::EventLogSession> event_log_session;
  if (telemetry) {
    metrics_session = std::make_unique<commdet::obs::MetricsSession>(registry);
    std::error_code ec;
    std::filesystem::create_directories(sopts.dir, ec);  // events may precede first save
    eopts.path = event_log_path.empty() ? sopts.dir + "/events.jsonl" : event_log_path;
    event_log = std::make_unique<commdet::obs::EventLog>(eopts);
    event_log_session = std::make_unique<commdet::obs::EventLogSession>(*event_log);
  }

  try {
    // Recover when the state directory already holds generations;
    // otherwise cold-start from the graph file (writer) or empty
    // awaiting a snapshot transfer (follower).
    const bool have_state = !commdet::list_checkpoints(sopts.dir).empty();
    commdet::serve::FollowerOptions fopts;  // follower start, and demotion reopen
    fopts.dynamic = sopts.dynamic;
    fopts.dir = sopts.dir;
    fopts.max_lag_epochs = max_lag;
    fopts.save_every_batches = sopts.save_every_batches;
    fopts.keep_generations = sopts.keep_generations;
    fopts.fsync_wal = sopts.fsync_wal;
    g_fopts = fopts;
    if (g_copts.enabled() && !follower_mode) {
      // Clustered writer: replicate to every other peer and stamp every
      // frame with a persisted term (>= 1, never lower across restarts)
      // plus the lease the followers' failure detectors arm.
      sopts.replication.endpoints = g_copts.replication_endpoints();
      sopts.replication.term =
          std::max<std::int64_t>(commdet::serve::load_cluster_term(sopts.dir), 1);
      sopts.replication.lease_seconds = g_copts.lease_seconds;
      commdet::serve::store_cluster_term(sopts.dir, sopts.replication.term);
    }
    if (follower_mode) {
      auto opened = commdet::serve::FollowerService<V>::open(fopts);
      if (!opened.has_value())
        return report_structured_error(opened.error(),
                                       commdet::exit_code_for(opened.error().code));
      g_roles.follower = std::move(opened.value());
    } else if (have_state) {
      auto opened = commdet::serve::CommunityService<V>::open(sopts);
      if (!opened.has_value())
        return report_structured_error(opened.error(),
                                       commdet::exit_code_for(opened.error().code));
      g_roles.writer = std::move(opened.value());
    } else {
      if (graph_path.empty()) {
        std::fprintf(stderr, "error: no state in --dir and no graph file given\n");
        return 2;
      }
      auto created = commdet::serve::CommunityService<V>::create(
          commdet::build_community_graph(load(graph_path)), sopts);
      if (!created.has_value())
        return report_structured_error(created.error(),
                                       commdet::exit_code_for(created.error().code));
      g_roles.writer = std::move(created.value());
    }
    g_sopts = sopts;

    {
      const Roles roles = current_roles();
      const long long epoch = roles.writer ? roles.writer->snapshot()->epoch
                                           : roles.follower->epoch();
      const long long replayed = roles.writer ? roles.writer->replayed_batches()
                                              : roles.follower->replayed_batches();
      const long long term = roles.writer ? roles.writer->cluster_term()
                                          : roles.follower->term();
      std::printf("READY epoch=%lld replayed=%lld role=%s term=%lld\n", epoch,
                  replayed, roles.writer ? "writer" : "follower", term);
      std::fflush(stdout);
    }

    if (g_copts.enabled()) {
      // The self-healing loop: watches the lease (follower), runs the
      // election when it expires, and steps down a fenced writer.
      commdet::serve::ClusterSupervisor::Callbacks cb;
      cb.self = [] {
        const Roles roles = current_roles();
        commdet::serve::ClusterSelf s;
        if (roles.writer) {
          s.role = "writer";
          s.term = roles.writer->cluster_term();
          s.epoch = roles.writer->snapshot()->epoch;
          s.fenced_term = roles.writer->fenced_term();
        } else if (roles.follower) {
          s.role = "follower";
          s.term = roles.follower->term();
          s.epoch = roles.follower->epoch();
          s.lease_granted = roles.follower->lease_granted();
          s.lease_remaining_seconds = roles.follower->lease_remaining_seconds();
        } else {
          throw std::runtime_error("role handoff in progress");
        }
        s.wal_seq = s.epoch;
        return s;
      };
      cb.promote = [](std::int64_t new_term) {
        const std::string reply = promote_follower(new_term);
        if (reply.compare(0, 2, "OK") != 0) throw std::runtime_error(reply);
      };
      cb.demote = [](std::int64_t observed_term) { demote_writer(observed_term); };
      cb.observe_writer = [](std::int64_t term) {
        const Roles roles = current_roles();
        if (roles.follower) roles.follower->grant_lease(term, g_copts.lease_seconds);
      };
      g_supervisor =
          std::make_unique<commdet::serve::ClusterSupervisor>(g_copts, std::move(cb));
    }

    if (!socket_path.empty()) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) { std::perror("socket"); return 1; }
      struct sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (socket_path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "error: socket path too long\n");
        return 2;
      }
      std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
      ::unlink(socket_path.c_str());
      if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0 ||
          ::listen(fd, 64) < 0) {
        std::perror("bind/listen");
        return 1;
      }
      serve_socket(fd, idle_timeout_seconds, max_line_bytes);
      ::unlink(socket_path.c_str());
    } else if (port != 0) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) { std::perror("socket"); return 1; }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      struct sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local only
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0 ||
          ::listen(fd, 64) < 0) {
        std::perror("bind/listen");
        return 1;
      }
      serve_socket(fd, idle_timeout_seconds, max_line_bytes);
    } else {
      // EOF = graceful shutdown.
      run_session("stdin", 0, 1, /*is_socket=*/false, idle_timeout_seconds,
                  max_line_bytes);
    }

    g_supervisor.reset();  // join the failover loop before closing services

    const Roles roles = current_roles();
    if (roles.writer) {
      roles.writer->shutdown();  // drain + final snapshot

      if (!report_path.empty()) {
        const auto platform = commdet::detect_platform();
        commdet::obs::RunReportInputs inputs;
        inputs.platform = &platform;
        inputs.dynamic = &roles.writer->dynamics().stats();
        const commdet::obs::TelemetrySnapshot tsnap = roles.writer->collect_telemetry();
        inputs.telemetry = &tsnap;
        inputs.info = {{"tool", "commdet_serve"},
                       {"dir", sopts.dir},
                       {"metric", metric},
                       {"replayed", std::to_string(roles.writer->replayed_batches())},
                       {"queries", std::to_string(roles.writer->queries_served())}};
        commdet::obs::write_text_file(
            report_path,
            commdet::obs::run_report_json(roles.writer->dynamics().clustering(), inputs));
        std::fprintf(stderr, "run report written to %s\n", report_path.c_str());
      }
      std::printf("BYE epoch=%lld\n",
                  static_cast<long long>(roles.writer->dynamics().epoch()));
    } else {
      std::printf("BYE epoch=%lld\n", static_cast<long long>(roles.follower->epoch()));
    }
    return 0;
  } catch (const commdet::CommdetError& e) {
    return report_structured_error(e.error(), commdet::exit_code_for(e.code()));
  } catch (const std::exception& e) {
    return report_structured_error(
        commdet::Error{commdet::ErrorCode::kInternal, commdet::Phase::kUnknown, e.what()}, 1);
  }
}
