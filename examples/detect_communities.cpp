// Command-line community detector: the tool a downstream user runs on
// their own graph files.
//
//   $ ./detect_communities <graph-file> [options]
//
// Formats are chosen by extension: .txt/.el (edge list), .graph (METIS),
// .mtx (Matrix Market), .bin (commdet binary).  Options:
//   --metric modularity|conductance|heavy   scoring metric
//   --algo agglo|lp-sync|lp-async|louvain|agglo-sharded
//                       detection backend (DetectPlan; default agglo = the
//                       paper's agglomeration; lp-* = parallel CDLP label
//                       propagation; louvain = parallel Louvain with
//                       local-move refinement; agglo-sharded = the
//                       agglomeration over a K-way partitioned graph)
//   --shards <K>        shard count for agglo-sharded (implies the
//                       sharded backend when --algo is default/agglo)
//   --spill-dir <dir>   out-of-core mode: spill inactive shard blocks to
//                       snapshot files under <dir> so one block is
//                       resident per pass (implies agglo-sharded)
//   --coverage <x>      stop at coverage >= x (paper's experiments: 0.5)
//   --min-communities <k>
//   --max-size <n>      maximum original vertices per community
//   --matcher list|sweep|greedy
//   --contractor bucket|hash
//   --threads <t>       OpenMP threads
//   --out <file>        write "vertex community" lines
//   --largest-component run on the largest connected component only
//   --max-seconds / --max-memory-mb / --max-stalled-levels / --grace-levels
//                       run budget: degrade to the best clustering so far
//                       instead of running without bound
//   --checkpoint-dir <dir>   crash-safe checkpointing: snapshot the
//                       resumable state into <dir> at level boundaries
//                       (and on budget exhaustion or SIGINT/SIGTERM)
//   --checkpoint-every <k>   checkpoint cadence in levels (default 1)
//   --checkpoint-keep <k>    generations retained (default 2)
//   --resume            continue from the newest valid checkpoint in
//                       --checkpoint-dir (falls back to a fresh run when
//                       none exists); pass the same detection flags
//   --updates <file>    dynamic mode: after the initial detection,
//                       stream edge deltas ("+ u v [w]" / "- u v" /
//                       "= u v w" lines) through seeded re-agglomeration
//   --batch-size <n>    deltas per batch in dynamic mode (default 1024,
//                       0 = one batch for the whole file)
//   --halo <k>|auto     unseat k hops around updated edges (default 1);
//                       "auto" picks the radius per batch from the
//                       perturbation's cut-weight share
//   --refresh-algo agglo|lp-sync|lp-async|louvain
//                       backend for cadence/quality-triggered refreshes
//                       in dynamic mode (default agglo)
//   --report <file>     machine-readable JSON run report (schema
//                       "commdet-run-report" v1: trace, metrics, levels,
//                       platform, resources, checkpoint provenance;
//                       dynamic runs add the "dynamic" object)
//   --report-csv <file> per-level CSV table
//   --trace             print the span tree to stderr after the run
//
// Exit codes: 0 success (including degraded-but-returned runs), 2 usage,
// 1 unstructured exception, and exit_code_for() categories (3..9) for
// structured errors — which are also printed to stderr as one JSON line.
#include <omp.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "commdet/cc/connected_components.hpp"
#include "commdet/core/detect.hpp"
#include "commdet/core/metrics.hpp"
#include "commdet/dyn/dynamic_communities.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/graph/delta.hpp"
#include "commdet/io/delta_text.hpp"
#include "commdet/graph/stats.hpp"
#include "commdet/io/binary.hpp"
#include "commdet/io/edge_list_text.hpp"
#include "commdet/io/matrix_market.hpp"
#include "commdet/io/metis.hpp"
#include "commdet/obs/json.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/probes.hpp"
#include "commdet/obs/report.hpp"
#include "commdet/obs/trace.hpp"
#include "commdet/platform/platform_info.hpp"
#include "commdet/robust/checkpoint.hpp"
#include "commdet/util/rng.hpp"

namespace {

using V = std::int64_t;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

commdet::EdgeList<V> load(const std::string& path) {
  if (ends_with(path, ".graph")) return commdet::read_metis<V>(path);
  if (ends_with(path, ".mtx")) return commdet::read_matrix_market<V>(path);
  if (ends_with(path, ".bin")) return commdet::read_edge_list_binary<V>(path);
  return commdet::read_edge_list_text<V>(path);
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: detect_communities <graph-file> [--metric modularity|conductance|heavy|resolution]\n"
               "       [--algo agglo|lp-sync|lp-async|louvain|agglo-sharded]\n"
               "       [--shards K] [--spill-dir d]\n"
               "       [--coverage x] [--min-communities k] [--max-size n]\n"
               "       [--matcher list|sweep|greedy] [--contractor bucket|hash|spgemm]\n"
               "       [--refine flat|vcycle] [--gamma g] [--threads t] [--out file]\n"
               "       [--largest-component] [--max-seconds s] [--max-memory-mb m]\n"
               "       [--max-stalled-levels k] [--grace-levels k]\n"
               "       [--checkpoint-dir d] [--checkpoint-every k] [--checkpoint-keep k]\n"
               "       [--resume]\n"
               "       [--updates deltas.txt] [--batch-size n] [--halo k|auto]\n"
               "       [--refresh-margin x] [--refresh-every n]\n"
               "       [--refresh-algo agglo|lp-sync|lp-async|louvain]\n"
               "       [--report file.json] [--report-csv file.csv] [--trace]\n");
  std::exit(2);
}

/// First SIGINT/SIGTERM requests a cooperative stop (the driver
/// checkpoints and returns best-so-far); restoring the default action
/// means a second signal kills the process the normal way.
extern "C" void on_stop_signal(int sig) {
  commdet::request_interrupt();
  std::signal(sig, SIG_DFL);
}

/// Emits a structured error to stderr as one JSON line and returns the
/// category exit code, so supervisors can branch on $? or parse stderr.
int report_structured_error(const commdet::Error& err, int exit_code) {
  commdet::obs::JsonWriter w;
  w.begin_object();
  w.key("error");
  w.begin_object();
  w.key("code");
  w.value(commdet::to_string(err.code));
  w.key("phase");
  w.value(commdet::to_string(err.phase));
  w.key("detail");
  w.value(err.detail);
  w.key("exit_code");
  w.value(exit_code);
  w.end_object();
  w.end_object();
  std::fprintf(stderr, "%s\n", w.take().c_str());
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string path = argv[1];
  std::string metric = "modularity";
  std::string out_path;
  std::string report_path;
  std::string report_csv_path;
  std::string updates_path;
  std::int64_t batch_size = 1024;
  int halo_hops = 1;
  double refresh_margin = 0.0;
  int refresh_every = 0;
  bool print_trace = false;
  bool use_largest_component = false;
  bool resume = false;
  int shards = 0;            // > 0: agglo-sharded with this K
  std::string spill_dir;     // non-empty: out-of-core (implies sharded)
  commdet::DetectPlan plan;          // default: agglomerative
  commdet::DetectPlan refresh_plan;  // dynamic-mode refresh backend
  commdet::DetectOptions dopts;
  commdet::AgglomerationOptions& opts = dopts.agglomeration;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--metric") {
      metric = next();
    } else if (arg == "--algo") {
      const auto p = commdet::DetectPlan::FromName(next());
      if (!p.has_value()) usage();
      plan = *p;
    } else if (arg == "--shards") {
      shards = std::stoi(next());
    } else if (arg == "--spill-dir") {
      spill_dir = next();
    } else if (arg == "--refresh-algo") {
      const auto p = commdet::DetectPlan::FromName(next());
      if (!p.has_value()) usage();
      refresh_plan = *p;
    } else if (arg == "--coverage") {
      opts.min_coverage = std::stod(next());
    } else if (arg == "--min-communities") {
      opts.min_communities = std::stoll(next());
    } else if (arg == "--max-size") {
      opts.max_community_size = std::stoll(next());
    } else if (arg == "--matcher") {
      const auto m = next();
      if (m == "list") opts.matcher = commdet::MatcherKind::kUnmatchedList;
      else if (m == "sweep") opts.matcher = commdet::MatcherKind::kEdgeSweep;
      else if (m == "greedy") opts.matcher = commdet::MatcherKind::kSequentialGreedy;
      else usage();
    } else if (arg == "--contractor") {
      const auto c = next();
      if (c == "bucket") opts.contractor = commdet::ContractorKind::kBucketSort;
      else if (c == "hash") opts.contractor = commdet::ContractorKind::kHashChain;
      else if (c == "spgemm") opts.contractor = commdet::ContractorKind::kSpGemm;
      else usage();
    } else if (arg == "--refine") {
      const auto mode = next();
      if (mode == "flat") dopts.refine_mode = commdet::DetectOptions::RefineMode::kFlat;
      else if (mode == "vcycle") dopts.refine_mode = commdet::DetectOptions::RefineMode::kVCycle;
      else usage();
    } else if (arg == "--gamma") {
      dopts.resolution_gamma = std::stod(next());
    } else if (arg == "--threads") {
      omp_set_num_threads(std::stoi(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--largest-component") {
      use_largest_component = true;
    } else if (arg == "--max-seconds") {
      opts.budget.max_seconds = std::stod(next());
    } else if (arg == "--max-memory-mb") {
      opts.budget.max_memory_bytes = std::stoll(next()) << 20;
    } else if (arg == "--max-stalled-levels") {
      opts.budget.max_stalled_levels = std::stoi(next());
    } else if (arg == "--grace-levels") {
      opts.budget.grace_levels = std::stoi(next());
    } else if (arg == "--checkpoint-dir") {
      opts.checkpoint.directory = next();
    } else if (arg == "--checkpoint-every") {
      opts.checkpoint.every_levels = std::stoi(next());
    } else if (arg == "--checkpoint-keep") {
      opts.checkpoint.keep_generations = std::stoi(next());
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--updates") {
      updates_path = next();
    } else if (arg == "--batch-size") {
      batch_size = std::stoll(next());
    } else if (arg == "--halo") {
      const auto h = next();
      halo_hops = h == "auto" ? -1 : std::stoi(h);
    } else if (arg == "--refresh-margin") {
      refresh_margin = std::stod(next());
    } else if (arg == "--refresh-every") {
      refresh_every = std::stoi(next());
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--report-csv") {
      report_csv_path = next();
    } else if (arg == "--trace") {
      print_trace = true;
    } else {
      usage();
    }
  }
  if (resume && !opts.checkpoint.enabled()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint-dir\n");
    return 2;
  }
  // --shards / --spill-dir select (or configure) the sharded backend.
  if (shards > 0 || !spill_dir.empty()) {
    const bool agglo_family =
        plan.algorithm() == commdet::AlgorithmKind::kAgglomerative ||
        plan.algorithm() == commdet::AlgorithmKind::kAggloSharded;
    if (!agglo_family) {
      std::fprintf(stderr, "error: --shards/--spill-dir require --algo agglo-sharded\n");
      return 2;
    }
    commdet::ShardOptions sh = plan.algorithm() == commdet::AlgorithmKind::kAggloSharded
                                   ? plan.shard()
                                   : commdet::ShardOptions{};
    if (shards > 0) sh.shards = shards;
    if (!spill_dir.empty()) {
      sh.spill = true;
      sh.spill_dir = spill_dir;
    }
    plan = commdet::DetectPlan::AggloSharded(sh);
  }

  // Observability is opt-in: with no report/trace flag the sinks stay
  // uninstalled and the instrumented kernels run at full speed.
  const bool observing = print_trace || !report_path.empty() || !report_csv_path.empty();
  commdet::obs::Trace trace;
  commdet::obs::MetricsRegistry metrics;
  std::optional<commdet::obs::TraceSession> trace_session;
  std::optional<commdet::obs::MetricsSession> metrics_session;
  if (observing) {
    trace_session.emplace(trace);
    metrics_session.emplace(metrics);
  }
  const commdet::obs::ResourceSample resources_begin = commdet::obs::sample_resources();

  try {
    auto edges = load(path);
    if (use_largest_component) edges = commdet::largest_component(edges);
    const auto g = commdet::build_community_graph(edges);
    const auto stats = commdet::graph_stats(g);
    std::printf("graph: %lld vertices, %lld unique edges, total weight %lld\n",
                static_cast<long long>(stats.num_vertices),
                static_cast<long long>(stats.num_edges),
                static_cast<long long>(stats.total_weight));

    if (metric == "modularity") dopts.scorer = commdet::ScorerKind::kModularity;
    else if (metric == "conductance") dopts.scorer = commdet::ScorerKind::kConductance;
    else if (metric == "heavy") dopts.scorer = commdet::ScorerKind::kHeavyEdge;
    else if (metric == "resolution") dopts.scorer = commdet::ScorerKind::kResolutionModularity;
    else usage();

    if (opts.checkpoint.enabled()) {
      // Fold the input graph's identity into the configuration
      // fingerprint so a checkpoint cannot silently resume against a
      // different graph, and arm cooperative shutdown: the first
      // SIGINT/SIGTERM checkpoints and exits cleanly with the report.
      std::uint64_t salt = commdet::mix64(0x636c69636b707473ULL ^
                                          static_cast<std::uint64_t>(stats.num_vertices));
      salt = commdet::mix64(salt ^ static_cast<std::uint64_t>(stats.num_edges));
      salt = commdet::mix64(salt ^ static_cast<std::uint64_t>(stats.total_weight));
      opts.checkpoint.config_salt = salt;
      std::signal(SIGINT, on_stop_signal);
      std::signal(SIGTERM, on_stop_signal);
    }

    commdet::Clustering<V> result;
    if (resume) {
      auto ckpt = commdet::load_latest_checkpoint<V>(opts.checkpoint.directory);
      if (ckpt.has_value()) {
        std::printf("resuming from %s (level %d, %.3fs of prior work)\n",
                    ckpt->source_path.c_str(), ckpt->next_level, ckpt->elapsed_seconds);
        result = commdet::resume_detect(g, std::move(*ckpt), dopts);
      } else {
        std::fprintf(stderr,
                     "warning: no valid checkpoint in %s; starting a fresh run\n",
                     opts.checkpoint.directory.c_str());
        result = commdet::detect_communities(g, plan, dopts);
      }
    } else {
      result = commdet::detect_communities(g, plan, dopts);
    }

    std::printf("communities: %lld   modularity: %.4f   coverage: %.4f\n",
                static_cast<long long>(result.num_communities), result.final_modularity,
                result.final_coverage);
    std::printf("levels: %d   time: %.3fs   contraction share of time: %.0f%%\n",
                result.num_levels(), result.total_seconds,
                100.0 * result.contraction_fraction());
    std::printf("termination: %s\n", std::string(commdet::to_string(result.reason)).c_str());
    if (result.algorithm.has_value())
      std::printf("algorithm: %s (%d %s%s)\n", result.algorithm->name.c_str(),
                  result.algorithm->iterations,
                  result.algorithm->name.rfind("lp-", 0) == 0 ? "sweeps" : "levels",
                  result.algorithm->converged ? ", converged" : "");
    if (commdet::is_degraded(result.reason) && result.error)
      std::printf("degraded run (best clustering so far returned): %s\n",
                  result.error->message().c_str());
    if (result.checkpoint.has_value() && result.checkpoint->last_generation >= 0)
      std::printf("checkpoint: generation %lld in %s (resume with --resume)\n",
                  static_cast<long long>(result.checkpoint->last_generation),
                  result.checkpoint->directory.c_str());
    for (const auto& l : result.levels)
      std::printf("  level %2d: %9lld -> %9lld communities, %9lld edges, "
                  "coverage %.3f, modularity %.4f\n",
                  l.level, static_cast<long long>(l.nv_before),
                  static_cast<long long>(l.nv_after), static_cast<long long>(l.ne_before),
                  l.coverage, l.modularity);

    // Dynamic mode: adopt the detected clustering and stream the delta
    // file through seeded re-agglomeration, batch by batch.  A failed
    // batch rolls back and the stream continues with the next one.
    std::optional<commdet::obs::DynamicRunStats> dyn_stats;
    if (!updates_path.empty()) {
      commdet::DynamicOptions dyn_opts;
      dyn_opts.detect = dopts;
      dyn_opts.halo_hops = halo_hops;
      dyn_opts.refresh_margin = refresh_margin;
      dyn_opts.refresh_every = refresh_every;
      dyn_opts.refresh_plan = refresh_plan;
      commdet::DynamicCommunities<V> dyn(commdet::CommunityGraph<V>(g), result, dyn_opts);
      const auto deltas = commdet::read_delta_text<V>(updates_path);
      const auto total = static_cast<std::int64_t>(deltas.size());
      const std::int64_t step =
          batch_size > 0 ? batch_size : std::max<std::int64_t>(total, 1);
      if (halo_hops < 0)
        std::printf("dynamic: %lld deltas from %s in batches of %lld (halo auto)\n",
                    static_cast<long long>(total), updates_path.c_str(),
                    static_cast<long long>(step));
      else
        std::printf("dynamic: %lld deltas from %s in batches of %lld (halo %d)\n",
                    static_cast<long long>(total), updates_path.c_str(),
                    static_cast<long long>(step), halo_hops);
      for (std::int64_t off = 0; off < total; off += step) {
        commdet::DeltaBatch<V> batch;
        batch.deltas.assign(deltas.deltas.begin() + off,
                            deltas.deltas.begin() + std::min(total, off + step));
        const auto row = dyn.apply_batch(batch);
        if (!row.has_value()) {
          std::fprintf(stderr, "batch at offset %lld failed (rolled back): %s\n",
                       static_cast<long long>(off), row.error().message().c_str());
          continue;
        }
        std::printf("  batch %3lld: %6lld deltas (%lld effective), "
                    "%.3fs apply + %.3fs recompute, %lld communities, modularity %.4f\n",
                    static_cast<long long>(row->batch),
                    static_cast<long long>(row->deltas),
                    static_cast<long long>(row->effective), row->apply_seconds,
                    row->recompute_seconds, static_cast<long long>(row->num_communities),
                    row->modularity);
      }
      result = dyn.clustering();
      dyn_stats = dyn.stats();
      std::printf("dynamic final: %lld batches (%lld rolled back), "
                  "%lld communities, modularity %.4f, %.0f updates/s\n",
                  static_cast<long long>(dyn_stats->batches),
                  static_cast<long long>(dyn_stats->rolled_back),
                  static_cast<long long>(result.num_communities),
                  result.final_modularity, dyn_stats->updates_per_second());
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) throw std::runtime_error("cannot write " + out_path);
      for (std::size_t v = 0; v < result.community.size(); ++v)
        out << v << ' ' << static_cast<long long>(result.community[v]) << '\n';
      std::printf("assignment written to %s\n", out_path.c_str());
    }

    if (!report_path.empty()) {
      const auto platform = commdet::detect_platform();
      const auto degree = commdet::degree_distribution(g);
      const auto sizes = commdet::community_size_distribution(
          std::span<const V>(result.community.data(), result.community.size()),
          result.num_communities);
      const auto resources =
          commdet::obs::resource_delta(resources_begin, commdet::obs::sample_resources());
      commdet::obs::RunReportInputs inputs;
      inputs.platform = &platform;
      inputs.graph = &stats;
      inputs.degree = &degree;
      inputs.community_sizes = &sizes;
      inputs.trace = &trace;
      inputs.metrics = &metrics;
      inputs.resources = &resources;
      inputs.info = {{"tool", "detect_communities"},
                     {"input", path},
                     {"metric", metric},
                     {"algorithm", std::string(plan.name())}};
      if (opts.checkpoint.enabled())
        inputs.info.emplace_back("checkpoint_dir", opts.checkpoint.directory);
      if (dyn_stats.has_value()) {
        inputs.dynamic = &*dyn_stats;
        inputs.info.emplace_back("updates", updates_path);
      }
      commdet::obs::write_text_file(report_path,
                                    commdet::obs::run_report_json(result, inputs));
      std::printf("run report written to %s\n", report_path.c_str());
    }
    if (!report_csv_path.empty()) {
      commdet::obs::write_text_file(report_csv_path, commdet::obs::levels_csv(result));
      std::printf("per-level CSV written to %s\n", report_csv_path.c_str());
    }
    if (print_trace)
      std::fprintf(stderr, "%s", commdet::obs::format_trace(trace).c_str());
  } catch (const commdet::CommdetError& e) {
    return report_structured_error(e.error(), commdet::exit_code_for(e.code()));
  } catch (const std::exception& e) {
    return report_structured_error(
        commdet::Error{commdet::ErrorCode::kInternal, commdet::Phase::kUnknown, e.what()}, 1);
  }
  return 0;
}
