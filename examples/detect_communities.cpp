// Command-line community detector: the tool a downstream user runs on
// their own graph files.
//
//   $ ./detect_communities <graph-file> [options]
//
// Formats are chosen by extension: .txt/.el (edge list), .graph (METIS),
// .mtx (Matrix Market), .bin (commdet binary).  Options:
//   --metric modularity|conductance|heavy   scoring metric
//   --coverage <x>      stop at coverage >= x (paper's experiments: 0.5)
//   --min-communities <k>
//   --max-size <n>      maximum original vertices per community
//   --matcher list|sweep|greedy
//   --contractor bucket|hash
//   --threads <t>       OpenMP threads
//   --out <file>        write "vertex community" lines
//   --largest-component run on the largest connected component only
//   --max-seconds / --max-memory-mb / --max-stalled-levels / --grace-levels
//                       run budget: degrade to the best clustering so far
//                       instead of running without bound
//   --report <file>     machine-readable JSON run report (schema
//                       "commdet-run-report" v1: trace, metrics, levels,
//                       platform, resources)
//   --report-csv <file> per-level CSV table
//   --trace             print the span tree to stderr after the run
#include <omp.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "commdet/cc/connected_components.hpp"
#include "commdet/core/detect.hpp"
#include "commdet/core/metrics.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/graph/stats.hpp"
#include "commdet/io/binary.hpp"
#include "commdet/io/edge_list_text.hpp"
#include "commdet/io/matrix_market.hpp"
#include "commdet/io/metis.hpp"
#include "commdet/obs/metrics.hpp"
#include "commdet/obs/probes.hpp"
#include "commdet/obs/report.hpp"
#include "commdet/obs/trace.hpp"
#include "commdet/platform/platform_info.hpp"

namespace {

using V = std::int64_t;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

commdet::EdgeList<V> load(const std::string& path) {
  if (ends_with(path, ".graph")) return commdet::read_metis<V>(path);
  if (ends_with(path, ".mtx")) return commdet::read_matrix_market<V>(path);
  if (ends_with(path, ".bin")) return commdet::read_edge_list_binary<V>(path);
  return commdet::read_edge_list_text<V>(path);
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: detect_communities <graph-file> [--metric modularity|conductance|heavy|resolution]\n"
               "       [--coverage x] [--min-communities k] [--max-size n]\n"
               "       [--matcher list|sweep|greedy] [--contractor bucket|hash|spgemm]\n"
               "       [--refine flat|vcycle] [--gamma g] [--threads t] [--out file]\n"
               "       [--largest-component] [--max-seconds s] [--max-memory-mb m]\n"
               "       [--max-stalled-levels k] [--grace-levels k]\n"
               "       [--report file.json] [--report-csv file.csv] [--trace]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string path = argv[1];
  std::string metric = "modularity";
  std::string out_path;
  std::string report_path;
  std::string report_csv_path;
  bool print_trace = false;
  bool use_largest_component = false;
  commdet::DetectOptions dopts;
  commdet::AgglomerationOptions& opts = dopts.agglomeration;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--metric") {
      metric = next();
    } else if (arg == "--coverage") {
      opts.min_coverage = std::stod(next());
    } else if (arg == "--min-communities") {
      opts.min_communities = std::stoll(next());
    } else if (arg == "--max-size") {
      opts.max_community_size = std::stoll(next());
    } else if (arg == "--matcher") {
      const auto m = next();
      if (m == "list") opts.matcher = commdet::MatcherKind::kUnmatchedList;
      else if (m == "sweep") opts.matcher = commdet::MatcherKind::kEdgeSweep;
      else if (m == "greedy") opts.matcher = commdet::MatcherKind::kSequentialGreedy;
      else usage();
    } else if (arg == "--contractor") {
      const auto c = next();
      if (c == "bucket") opts.contractor = commdet::ContractorKind::kBucketSort;
      else if (c == "hash") opts.contractor = commdet::ContractorKind::kHashChain;
      else if (c == "spgemm") opts.contractor = commdet::ContractorKind::kSpGemm;
      else usage();
    } else if (arg == "--refine") {
      const auto mode = next();
      if (mode == "flat") dopts.refine_mode = commdet::DetectOptions::RefineMode::kFlat;
      else if (mode == "vcycle") dopts.refine_mode = commdet::DetectOptions::RefineMode::kVCycle;
      else usage();
    } else if (arg == "--gamma") {
      dopts.resolution_gamma = std::stod(next());
    } else if (arg == "--threads") {
      omp_set_num_threads(std::stoi(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--largest-component") {
      use_largest_component = true;
    } else if (arg == "--max-seconds") {
      opts.budget.max_seconds = std::stod(next());
    } else if (arg == "--max-memory-mb") {
      opts.budget.max_memory_bytes = std::stoll(next()) << 20;
    } else if (arg == "--max-stalled-levels") {
      opts.budget.max_stalled_levels = std::stoi(next());
    } else if (arg == "--grace-levels") {
      opts.budget.grace_levels = std::stoi(next());
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--report-csv") {
      report_csv_path = next();
    } else if (arg == "--trace") {
      print_trace = true;
    } else {
      usage();
    }
  }

  // Observability is opt-in: with no report/trace flag the sinks stay
  // uninstalled and the instrumented kernels run at full speed.
  const bool observing = print_trace || !report_path.empty() || !report_csv_path.empty();
  commdet::obs::Trace trace;
  commdet::obs::MetricsRegistry metrics;
  std::optional<commdet::obs::TraceSession> trace_session;
  std::optional<commdet::obs::MetricsSession> metrics_session;
  if (observing) {
    trace_session.emplace(trace);
    metrics_session.emplace(metrics);
  }
  const commdet::obs::ResourceSample resources_begin = commdet::obs::sample_resources();

  try {
    auto edges = load(path);
    if (use_largest_component) edges = commdet::largest_component(edges);
    const auto g = commdet::build_community_graph(edges);
    const auto stats = commdet::graph_stats(g);
    std::printf("graph: %lld vertices, %lld unique edges, total weight %lld\n",
                static_cast<long long>(stats.num_vertices),
                static_cast<long long>(stats.num_edges),
                static_cast<long long>(stats.total_weight));

    if (metric == "modularity") dopts.scorer = commdet::ScorerKind::kModularity;
    else if (metric == "conductance") dopts.scorer = commdet::ScorerKind::kConductance;
    else if (metric == "heavy") dopts.scorer = commdet::ScorerKind::kHeavyEdge;
    else if (metric == "resolution") dopts.scorer = commdet::ScorerKind::kResolutionModularity;
    else usage();
    const commdet::Clustering<V> result = commdet::detect_communities(g, dopts);

    std::printf("communities: %lld   modularity: %.4f   coverage: %.4f\n",
                static_cast<long long>(result.num_communities), result.final_modularity,
                result.final_coverage);
    std::printf("levels: %d   time: %.3fs   contraction share of time: %.0f%%\n",
                result.num_levels(), result.total_seconds,
                100.0 * result.contraction_fraction());
    std::printf("termination: %s\n", std::string(commdet::to_string(result.reason)).c_str());
    if (commdet::is_degraded(result.reason) && result.error)
      std::printf("degraded run (best clustering so far returned): %s\n",
                  result.error->message().c_str());
    for (const auto& l : result.levels)
      std::printf("  level %2d: %9lld -> %9lld communities, %9lld edges, "
                  "coverage %.3f, modularity %.4f\n",
                  l.level, static_cast<long long>(l.nv_before),
                  static_cast<long long>(l.nv_after), static_cast<long long>(l.ne_before),
                  l.coverage, l.modularity);

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) throw std::runtime_error("cannot write " + out_path);
      for (std::size_t v = 0; v < result.community.size(); ++v)
        out << v << ' ' << static_cast<long long>(result.community[v]) << '\n';
      std::printf("assignment written to %s\n", out_path.c_str());
    }

    if (!report_path.empty()) {
      const auto platform = commdet::detect_platform();
      const auto degree = commdet::degree_distribution(g);
      const auto sizes = commdet::community_size_distribution(
          std::span<const V>(result.community.data(), result.community.size()),
          result.num_communities);
      const auto resources =
          commdet::obs::resource_delta(resources_begin, commdet::obs::sample_resources());
      commdet::obs::RunReportInputs inputs;
      inputs.platform = &platform;
      inputs.graph = &stats;
      inputs.degree = &degree;
      inputs.community_sizes = &sizes;
      inputs.trace = &trace;
      inputs.metrics = &metrics;
      inputs.resources = &resources;
      inputs.info = {{"tool", "detect_communities"},
                     {"input", path},
                     {"metric", metric}};
      commdet::obs::write_text_file(report_path,
                                    commdet::obs::run_report_json(result, inputs));
      std::printf("run report written to %s\n", report_path.c_str());
    }
    if (!report_csv_path.empty()) {
      commdet::obs::write_text_file(report_csv_path, commdet::obs::levels_csv(result));
      std::printf("per-level CSV written to %s\n", report_csv_path.c_str());
    }
    if (print_trace)
      std::fprintf(stderr, "%s", commdet::obs::format_trace(trace).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
