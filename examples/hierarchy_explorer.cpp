// Hierarchy explorer: the agglomerative dendrogram as a feature.
//
//   $ ./hierarchy_explorer [caves] [cave-size]
//
// Runs detection with hierarchy tracking, evaluates the partition quality
// at *every* contraction level (the dendrogram cut sweep), then applies
// the parallel local-move refinement (the paper's stated future work) to
// the best cut and reports the improvement.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "commdet/core/agglomerate.hpp"
#include "commdet/core/metrics.hpp"
#include "commdet/gen/simple_graphs.hpp"
#include "commdet/graph/builder.hpp"
#include "commdet/refine/refine.hpp"

int main(int argc, char** argv) {
  using V = std::int32_t;
  const std::int64_t caves = argc > 1 ? std::atoll(argv[1]) : 64;
  const std::int64_t cave_size = argc > 2 ? std::atoll(argv[2]) : 10;

  const auto el = commdet::make_caveman<V>(caves, cave_size);
  const auto g = commdet::build_community_graph(el);
  std::printf("caveman graph: %lld caves of %lld -> %lld vertices, %lld edges\n\n",
              static_cast<long long>(caves), static_cast<long long>(cave_size),
              static_cast<long long>(el.num_vertices),
              static_cast<long long>(g.num_edges()));

  commdet::AgglomerationOptions opts;
  opts.track_hierarchy = true;
  const auto r = commdet::agglomerate(g, commdet::ModularityScorer{}, opts);

  std::printf("dendrogram cut sweep (%d levels):\n", r.num_levels());
  std::printf("  %-6s %12s %12s %10s %14s\n", "level", "communities", "modularity",
              "coverage", "worst-conduct.");
  int best_level = 0;
  double best_modularity = -1.0;
  for (int level = 0; level <= r.num_levels(); ++level) {
    const auto labels = r.labels_at_level(level);
    const auto q = commdet::evaluate_partition(g, std::span<const V>(labels));
    std::printf("  %-6d %12lld %12.4f %10.4f %14.4f\n", level,
                static_cast<long long>(q.num_communities), q.modularity, q.coverage,
                q.max_conductance);
    if (q.modularity > best_modularity) {
      best_modularity = q.modularity;
      best_level = level;
    }
  }
  std::printf("\nbest cut: level %d (modularity %.4f)\n", best_level, best_modularity);

  auto labels = r.labels_at_level(best_level);
  const auto stats = commdet::refine_partition(g, labels);
  std::printf("after parallel refinement: modularity %.4f -> %.4f "
              "(%lld moves in %d rounds)\n",
              stats.modularity_before, stats.modularity_after,
              static_cast<long long>(stats.moves), stats.rounds);
  return 0;
}
