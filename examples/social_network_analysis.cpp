// Social-network scenario: detect communities in a synthetic friendship
// network with planted group structure (the role soc-LiveJournal1 plays
// in the paper) and verify recovery against ground truth.
//
//   $ ./social_network_analysis [vertices] [groups]
//
// Shows: planted-partition generation, detection with a community-size
// constraint, agreement scoring (adjusted Rand index), per-community
// statistics, and a comparison against the sequential Louvain baseline.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "commdet/algo/louvain.hpp"
#include "commdet/core/agglomerate.hpp"
#include "commdet/core/metrics.hpp"
#include "commdet/gen/planted_partition.hpp"
#include "commdet/graph/builder.hpp"

int main(int argc, char** argv) {
  using V = std::int32_t;

  commdet::PlantedPartitionParams params;
  params.num_vertices = argc > 1 ? std::atoll(argv[1]) : 20000;
  params.num_blocks = argc > 2 ? std::atoll(argv[2]) : 200;
  params.internal_degree = 18;
  params.external_degree = 3;
  params.seed = 2012;

  std::printf("generating friendship network: %lld members, %lld planted groups\n",
              static_cast<long long>(params.num_vertices),
              static_cast<long long>(params.num_blocks));
  const auto edges = commdet::generate_planted_partition<V>(params);
  const auto g = commdet::build_community_graph(edges);
  std::printf("  %lld unique friendships\n", static_cast<long long>(g.num_edges()));

  // Detect with a size cap near the planted group size, the kind of
  // external constraint the paper says real applications impose.
  commdet::AgglomerationOptions opts;
  opts.max_community_size = 2 * (params.num_vertices / params.num_blocks);
  const auto detected = commdet::agglomerate(g, commdet::ModularityScorer{}, opts);

  std::vector<std::int64_t> truth(static_cast<std::size_t>(params.num_vertices));
  for (std::int64_t v = 0; v < params.num_vertices; ++v)
    truth[static_cast<std::size_t>(v)] = commdet::planted_block_of(params, v);
  const double ari = commdet::adjusted_rand_index(
      std::span<const std::int64_t>(truth),
      std::span<const V>(detected.community.data(), detected.community.size()));

  const auto quality = commdet::evaluate_partition(
      g, std::span<const V>(detected.community.data(), detected.community.size()));
  std::printf("\nparallel agglomerative detection (%.3fs, %d levels):\n",
              detected.total_seconds, detected.num_levels());
  std::printf("  communities: %lld (planted: %lld)\n",
              static_cast<long long>(detected.num_communities),
              static_cast<long long>(params.num_blocks));
  std::printf("  modularity: %.4f   coverage: %.4f\n", quality.modularity, quality.coverage);
  std::printf("  community sizes: %lld .. %lld members\n",
              static_cast<long long>(quality.smallest_community),
              static_cast<long long>(quality.largest_community));
  std::printf("  agreement with planted groups (ARI): %.3f\n", ari);

  // Parallel Louvain (PLM) for context.
  commdet::PlmOptions plm;
  plm.refine = false;  // bare level loop, like the historical baseline
  const auto louvain = commdet::parallel_louvain(g, plm);
  const double louvain_ari = commdet::adjusted_rand_index(
      std::span<const std::int64_t>(truth),
      std::span<const V>(louvain.community.data(), louvain.community.size()));
  std::printf("\nparallel Louvain baseline (%.3fs):\n", louvain.total_seconds);
  std::printf("  communities: %lld   modularity: %.4f   ARI: %.3f\n",
              static_cast<long long>(louvain.num_communities), louvain.final_modularity,
              louvain_ari);
  return 0;
}
