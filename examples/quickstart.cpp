// Quickstart: build a tiny social graph, detect its communities, and
// inspect the result.
//
//   $ ./quickstart
//
// Demonstrates the minimal public API surface: EdgeList ->
// agglomerate(...) -> Clustering.
#include <cstdio>

#include "commdet/core/agglomerate.hpp"
#include "commdet/core/metrics.hpp"
#include "commdet/graph/builder.hpp"

int main() {
  using V = std::int32_t;

  // Two groups of friends bridged by a single acquaintance edge.
  commdet::EdgeList<V> graph;
  graph.num_vertices = 8;
  // Group A: vertices 0-3 (a clique).
  graph.add(0, 1);
  graph.add(0, 2);
  graph.add(0, 3);
  graph.add(1, 2);
  graph.add(1, 3);
  graph.add(2, 3);
  // Group B: vertices 4-7 (a clique).
  graph.add(4, 5);
  graph.add(4, 6);
  graph.add(4, 7);
  graph.add(5, 6);
  graph.add(5, 7);
  graph.add(6, 7);
  // The bridge.
  graph.add(3, 4);

  // Run with defaults: modularity scoring, the paper's unmatched-list
  // matching and bucket-sort contraction, terminate at a local maximum.
  const auto clustering = commdet::agglomerate(graph, commdet::ModularityScorer{});

  std::printf("communities found: %lld (termination: %s)\n",
              static_cast<long long>(clustering.num_communities),
              std::string(commdet::to_string(clustering.reason)).c_str());
  std::printf("modularity: %.4f   coverage: %.4f   levels: %d\n",
              clustering.final_modularity, clustering.final_coverage,
              clustering.num_levels());
  for (V v = 0; v < graph.num_vertices; ++v)
    std::printf("  vertex %d -> community %d\n", v,
                clustering.community[static_cast<std::size_t>(v)]);

  // Cross-check quality from scratch.
  const auto g = commdet::build_community_graph(graph);
  const auto quality = commdet::evaluate_partition(
      g, std::span<const V>(clustering.community.data(), clustering.community.size()));
  std::printf("independent evaluation: modularity %.4f, worst conductance %.4f\n",
              quality.modularity, quality.max_conductance);
  return 0;
}
