#!/usr/bin/env python3
"""Minimal client for the commdet_serve line protocol.

Connects to a running daemon over a Unix socket or local TCP, streams a
few edge deltas, commits them, and queries the published membership.

Start a daemon first, e.g.:

    build/examples/commdet_serve graph.txt --dir /tmp/commdet-state \
        --socket /tmp/commdet.sock

then:

    python3 examples/serve_client.py --socket /tmp/commdet.sock

The protocol is newline-framed text (see src/commdet/serve/protocol.hpp):
delta lines ("+ u v w", "- u v", "= u v w") are acknowledged lazily by
the next COMMIT; query verbs (GET, COMMUNITY, QUALITY, EPOCH, STATS)
answer immediately from the latest published epoch.
"""

import argparse
import json
import socket
import sys


class ServeClient:
    """Blocking line-oriented client; one request/response at a time."""

    def __init__(self, sock):
        self.sock = sock
        self.buf = b""

    @classmethod
    def connect(cls, unix_path=None, port=None):
        if unix_path:
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.connect(unix_path)
        else:
            s = socket.create_connection(("127.0.0.1", port))
        return cls(s)

    def send(self, line):
        """Fire-and-forget (delta lines are silent on success)."""
        self.sock.sendall(line.encode() + b"\n")

    def ask(self, line):
        """Send a verb and return its single reply line."""
        self.send(line)
        return self.recv_line()

    def recv_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode().rstrip("\r")

    def commit(self):
        """Barrier: returns the epoch once every prior delta is applied,
        or raises if any of them failed."""
        reply = self.ask("COMMIT")
        if not reply.startswith("OK "):
            raise RuntimeError(reply)
        return int(reply.split()[1])

    def health(self):
        """One JSON object: role (writer/follower), epoch, replication
        lag, and WAL cursor.  Works in both roles — on a follower it is
        the way to see how far behind the writer it is."""
        reply = self.ask("HEALTH")
        if not reply.startswith("OK "):
            raise RuntimeError(reply)
        return json.loads(reply[3:])


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = ap.add_mutually_exclusive_group(required=True)
    group.add_argument("--socket", help="Unix socket path of the daemon")
    group.add_argument("--port", type=int, help="local TCP port of the daemon")
    args = ap.parse_args()

    c = ServeClient.connect(unix_path=args.socket, port=args.port)

    print("epoch at connect:", c.ask("EPOCH"))

    # Stream a tiny batch of deltas, then barrier on COMMIT.
    for line in ["+ 0 1 2", "+ 1 2 1", "- 0 2"]:
        c.send(line)
    epoch = c.commit()
    print("committed epoch:", epoch)

    # Queries are answered from the immutable snapshot of that epoch.
    print("vertex 0:", c.ask("GET 0"))
    print("quality:", c.ask("QUALITY"))

    stats_reply = c.ask("STATS")
    if stats_reply.startswith("OK "):
        stats = json.loads(stats_reply[3:])
        print("batches applied:", stats["dynamic"]["batches"])

    # HEALTH works on writers and followers alike; on a writer with
    # replication configured it also reports each follower link's
    # acked epoch, and on a follower its lag behind the writer.
    health = c.health()
    print("role:", health["role"], "epoch:", health["epoch"])
    if health.get("replication"):
        for link in health["replication"]["followers"]:
            print("  follower", link["endpoint"], "acked", link["acked_epoch"])

    print(c.ask("QUIT"))


if __name__ == "__main__":
    sys.exit(main())
