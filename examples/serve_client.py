#!/usr/bin/env python3
"""Minimal client for the commdet_serve line protocol.

Connects to a running daemon over a Unix socket or local TCP, streams a
few edge deltas, commits them, and queries the published membership.

Start a daemon first, e.g.:

    build/examples/commdet_serve graph.txt --dir /tmp/commdet-state \
        --socket /tmp/commdet.sock

then:

    python3 examples/serve_client.py --socket /tmp/commdet.sock

or watch the daemon's live telemetry (a serve_top: ingest rate, batch
and query latency percentiles, per-follower replication lag), polling
the METRICS verb and redrawing one screen per interval:

    python3 examples/serve_client.py --socket /tmp/commdet.sock --watch

The protocol is newline-framed text (see src/commdet/serve/protocol.hpp):
delta lines ("+ u v w", "- u v", "= u v w") are acknowledged lazily by
the next COMMIT; query verbs (GET, COMMUNITY, QUALITY, EPOCH, STATS)
answer immediately from the latest published epoch.  METRICS is the one
multi-line reply: "OK METRICS <n>" followed by n lines of Prometheus
text exposition.
"""

import argparse
import json
import math
import re
import socket
import sys
import time


class ServeClient:
    """Blocking line-oriented client; one request/response at a time."""

    def __init__(self, sock):
        self.sock = sock
        self.buf = b""

    @classmethod
    def connect(cls, unix_path=None, port=None):
        if unix_path:
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.connect(unix_path)
        else:
            s = socket.create_connection(("127.0.0.1", port))
        return cls(s)

    def send(self, line):
        """Fire-and-forget (delta lines are silent on success)."""
        self.sock.sendall(line.encode() + b"\n")

    def ask(self, line):
        """Send a verb and return its single reply line."""
        self.send(line)
        return self.recv_line()

    def recv_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode().rstrip("\r")

    def commit(self):
        """Barrier: returns the epoch once every prior delta is applied,
        or raises if any of them failed."""
        reply = self.ask("COMMIT")
        if not reply.startswith("OK "):
            raise RuntimeError(reply)
        return int(reply.split()[1])

    def health(self):
        """One JSON object: role (writer/follower), epoch, replication
        lag, and WAL cursor.  Works in both roles — on a follower it is
        the way to see how far behind the writer it is."""
        reply = self.ask("HEALTH")
        if not reply.startswith("OK "):
            raise RuntimeError(reply)
        return json.loads(reply[3:])

    def cluster(self):
        """One JSON object from the CLUSTER verb: role, cluster term,
        lease remaining (follower) / fenced term (writer), peer list
        with ranks, and elections won.  On an unclustered daemon the
        peer list is empty and rank is -1."""
        reply = self.ask("CLUSTER")
        if not reply.startswith("OK "):
            raise RuntimeError(reply)
        return json.loads(reply[3:])

    def metrics(self):
        """Raw Prometheus exposition lines from the METRICS verb."""
        reply = self.ask("METRICS")
        if not reply.startswith("OK METRICS "):
            raise RuntimeError(reply)
        n = int(reply.split()[2])
        return [self.recv_line() for _ in range(n)]

    def metrics_json(self):
        """The commdet-telemetry v1 object from "METRICS json"."""
        reply = self.ask("METRICS json")
        if not reply.startswith("OK {"):
            raise RuntimeError(reply)
        return json.loads(reply[3:])


# ---------------------------------------------------------------------------
# Exposition parsing (the subset the daemon emits: no escapes in label
# values beyond \" never appearing, one "name{labels} value" per line).

_SERIES_RE = re.compile(r"^([a-zA-Z_][a-zA-Z0-9_]*)(\{[^}]*\})? (\S+)$")


def parse_exposition(lines):
    """Returns ({series: float}, {histogram_family: [(le, cumulative)]}).

    `series` keys keep their label suffix verbatim; histogram buckets are
    grouped per family (name with its non-le labels), le-sorted with
    +Inf last.
    """
    values = {}
    buckets = {}
    for line in lines:
        if not line or line.startswith("#"):
            continue
        m = _SERIES_RE.match(line)
        if not m:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name, labels, raw = m.groups()
        value = float(raw)
        values[name + (labels or "")] = value
        if name.endswith("_bucket") and labels:
            inner = labels[1:-1]
            parts = [kv for kv in inner.split(",") if not kv.startswith('le="')]
            le = next(kv[4:-1] for kv in inner.split(",") if kv.startswith('le="'))
            family = name[: -len("_bucket")] + ("{" + ",".join(parts) + "}" if parts else "")
            buckets.setdefault(family, []).append(
                (float("inf") if le == "+Inf" else float(le), value))
    for series in buckets.values():
        series.sort(key=lambda p: p[0])
    return values, buckets


def percentile(series, q):
    """Nearest-rank percentile from cumulative log2 buckets: the upper
    bound (le) of the bucket holding the ceil(q * count)-th sample."""
    if not series:
        return 0.0
    total = series[-1][1]
    if total <= 0:
        return 0.0
    rank = min(total, max(1, math.ceil(q * total)))
    for le, cum in series:
        if cum >= rank:
            return le
    return series[-1][0]


def _fmt_us(us):
    if us == float("inf"):
        return "inf"
    if us >= 1e6:
        return f"{us / 1e6:.1f}s"
    if us >= 1e3:
        return f"{us / 1e3:.1f}ms"
    return f"{us:.0f}us"


def watch(client, interval):
    """serve_top: poll METRICS and redraw a one-screen summary table."""
    prev = None  # (time, deltas_applied, queries) for rate computation
    while True:
        lines = client.metrics()
        now = time.monotonic()
        values, buckets = parse_exposition(lines)

        deltas = values.get("commdet_serve_deltas_applied_total",
                            values.get("commdet_serve_follower_replicated_total", 0))
        queries = values.get("commdet_serve_queries_total", 0)
        if prev is not None and now > prev[0]:
            dt = now - prev[0]
            ingest_rate = (deltas - prev[1]) / dt
            query_rate = (queries - prev[2]) / dt
        else:
            ingest_rate = values.get("commdet_serve_ingest_deltas_per_second", 0.0)
            query_rate = 0.0
        prev = (now, deltas, queries)

        rows = [
            ("epoch", f"{values.get('commdet_serve_epoch', 0):.0f}"),
            ("uptime", f"{values.get('commdet_serve_uptime_seconds', 0):.0f}s"),
            ("queue depth", f"{values.get('commdet_serve_queue_depth', 0):.0f}"),
            ("ingest", f"{ingest_rate:,.0f} deltas/s ({deltas:,.0f} total)"),
            ("queries", f"{query_rate:,.0f}/s ({queries:,.0f} total)"),
            ("batches", f"{values.get('commdet_serve_batches_total', 0):,.0f} "
                        f"({values.get('commdet_serve_batches_rolled_back_total', 0):.0f} rolled back)"),
        ]
        for family, label in [("commdet_serve_batch_total_us", "batch latency"),
                              ("commdet_serve_batch_wal_append_us", "  wal append"),
                              ("commdet_serve_batch_apply_us", "  apply"),
                              ("commdet_serve_batch_publish_us", "  publish")]:
            if family in buckets:
                b = buckets[family]
                rows.append((label, f"p50 {_fmt_us(percentile(b, 0.50))}   "
                                    f"p99 {_fmt_us(percentile(b, 0.99))}"))
        for family in sorted(buckets):
            m = re.match(r"commdet_serve_query_([A-Z]+)_us$", family)
            if m:
                b = buckets[family]
                rows.append((f"query {m.group(1)}",
                             f"p50 {_fmt_us(percentile(b, 0.50))}   "
                             f"p99 {_fmt_us(percentile(b, 0.99))}   "
                             f"n {b[-1][1]:,.0f}"))
        followers = {}
        for series, v in values.items():
            m = re.match(r'commdet_serve_repl_link_(\w+)\{endpoint="([^"]*)"\}', series)
            if m:
                followers.setdefault(m.group(2), {})[m.group(1)] = v
        for endpoint, f in sorted(followers.items()):
            state = "up" if f.get("connected", 0) else "down"
            rows.append((f"follower {endpoint}",
                         f"{state}  lag {f.get('lag_records', 0):,.0f} rec / "
                         f"{f.get('lag_seconds', 0):.1f}s  "
                         f"shed {f.get('shed', 0):.0f}"))
        if "commdet_serve_follower_lag_records" in values:
            rows.append(("replication lag",
                         f"{values['commdet_serve_follower_lag_records']:,.0f} rec / "
                         f"{values.get('commdet_serve_follower_lag_seconds', 0):.1f}s "
                         f"behind writer epoch "
                         f"{values.get('commdet_serve_follower_writer_epoch', 0):.0f}"))
        if "commdet_cluster_term" in values:
            term = values["commdet_cluster_term"]
            lease = values.get("commdet_cluster_lease_remaining_seconds")
            elections = values.get("commdet_cluster_elections_total", 0)
            role = ("follower" if "commdet_serve_follower_lag_records" in values
                    else "writer")
            detail = (f"lease {lease:.1f}s remaining" if lease is not None
                      else "granting leases")
            rows.append(("cluster", f"{role}  term {term:.0f}  {detail}  "
                                    f"elections won {elections:.0f}"))
        if "commdet_events_appended_total" in values:
            rows.append(("events logged",
                         f"{values['commdet_events_appended_total']:.0f}"))

        sys.stdout.write("\x1b[H\x1b[2J")  # home + clear: one steady screen
        width = max(len(k) for k, _ in rows)
        print(f"commdet_serve telemetry — {time.strftime('%H:%M:%S')} "
              f"(every {interval:g}s, Ctrl-C to quit)")
        for key, val in rows:
            print(f"  {key:<{width}}  {val}")
        sys.stdout.flush()
        time.sleep(interval)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = ap.add_mutually_exclusive_group(required=True)
    group.add_argument("--socket", help="Unix socket path of the daemon")
    group.add_argument("--port", type=int, help="local TCP port of the daemon")
    ap.add_argument("--watch", action="store_true",
                    help="poll METRICS and render a refreshing telemetry table")
    ap.add_argument("--interval", type=float, default=2.0,
                    help="watch refresh interval in seconds (default 2)")
    args = ap.parse_args()

    c = ServeClient.connect(unix_path=args.socket, port=args.port)

    if args.watch:
        try:
            watch(c, args.interval)
        except KeyboardInterrupt:
            print()
        return 0

    print("epoch at connect:", c.ask("EPOCH"))

    # Stream a tiny batch of deltas, then barrier on COMMIT.
    for line in ["+ 0 1 2", "+ 1 2 1", "- 0 2"]:
        c.send(line)
    epoch = c.commit()
    print("committed epoch:", epoch)

    # Queries are answered from the immutable snapshot of that epoch.
    print("vertex 0:", c.ask("GET 0"))
    print("quality:", c.ask("QUALITY"))

    stats_reply = c.ask("STATS")
    if stats_reply.startswith("OK "):
        stats = json.loads(stats_reply[3:])
        print("batches applied:", stats["dynamic"]["batches"])

    # HEALTH works on writers and followers alike; on a writer with
    # replication configured it also reports each follower link's
    # acked epoch, and on a follower its lag behind the writer.
    health = c.health()
    print("role:", health["role"], "epoch:", health["epoch"])
    if health.get("replication"):
        for link in health["replication"]["followers"]:
            print("  follower", link["endpoint"], "acked", link["acked_epoch"])

    # Failover introspection: cluster term, rank, and peers (empty /
    # term 0 on an unclustered daemon).
    cl = c.cluster()
    print("cluster: role", cl["role"], "term", cl["term"], "rank", cl["rank"],
          "peers", len(cl.get("peers", [])))

    # One telemetry sample: p50/p99 batch latency from the histogram
    # buckets, the same numbers --watch renders continuously.
    values, buckets = parse_exposition(c.metrics())
    fam = "commdet_serve_batch_total_us"
    if fam in buckets:
        print("batch latency: p50", _fmt_us(percentile(buckets[fam], 0.5)),
              "p99", _fmt_us(percentile(buckets[fam], 0.99)))

    print(c.ask("QUIT"))


if __name__ == "__main__":
    sys.exit(main())
