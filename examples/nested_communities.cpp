// Nested community analysis: the paper's motivating use case in action.
//
//   "These smaller communities can be analyzed more thoroughly or form
//    the basis for multi-level algorithms" (Sec. I).
//
//   $ ./nested_communities [vertices] [blocks]
//
// Detects top-level communities, extracts the largest one as its own
// graph, and re-runs detection inside it at a higher resolution —
// communities within communities — reporting the per-community profile
// at both levels.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "commdet/core/detect.hpp"
#include "commdet/core/extraction.hpp"
#include "commdet/gen/planted_partition.hpp"
#include "commdet/graph/builder.hpp"

int main(int argc, char** argv) {
  using V = std::int32_t;

  commdet::PlantedPartitionParams params;
  params.num_vertices = argc > 1 ? std::atoll(argv[1]) : 30000;
  params.num_blocks = argc > 2 ? std::atoll(argv[2]) : 50;
  params.internal_degree = 16;
  params.external_degree = 4;
  const auto g =
      commdet::build_community_graph(commdet::generate_planted_partition<V>(params));
  std::printf("network: %lld vertices, %lld edges\n\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));

  // Level 1: coarse communities with V-cycle refinement.
  commdet::DetectOptions opts;
  opts.refine_mode = commdet::DetectOptions::RefineMode::kVCycle;
  const auto top = commdet::detect_communities(g, opts);
  std::printf("top level: %lld communities, modularity %.4f\n",
              static_cast<long long>(top.num_communities), top.final_modularity);

  const std::span<const V> labels(top.community.data(), top.community.size());
  const auto profiles = commdet::community_profiles(g, labels);
  // Largest community by member count.
  V largest = 0;
  for (V c = 1; c < static_cast<V>(profiles.size()); ++c)
    if (profiles[static_cast<std::size_t>(c)].size >
        profiles[static_cast<std::size_t>(largest)].size)
      largest = c;
  const auto& p = profiles[static_cast<std::size_t>(largest)];
  std::printf("largest community: %lld members, internal weight %lld, "
              "conductance %.4f\n\n",
              static_cast<long long>(p.size), static_cast<long long>(p.internal_weight),
              p.conductance);

  // Level 2: zoom into the largest community with a finer resolution.
  const auto sub = commdet::extract_community(g, labels, largest);
  const auto sub_graph = commdet::build_community_graph(sub.graph);
  commdet::DetectOptions fine;
  fine.scorer = commdet::ScorerKind::kResolutionModularity;
  fine.resolution_gamma = 2.5;  // resolve sub-structure the coarse pass merged
  const auto inner = commdet::detect_communities(sub_graph, fine);
  std::printf("inside it (resolution gamma = %.1f): %lld sub-communities, "
              "modularity %.4f\n",
              fine.resolution_gamma, static_cast<long long>(inner.num_communities),
              inner.final_modularity);

  const auto inner_profiles = commdet::community_profiles(
      sub_graph, std::span<const V>(inner.community.data(), inner.community.size()));
  std::printf("\n  %-14s %8s %12s %12s\n", "sub-community", "members", "internal-w",
              "conductance");
  for (std::size_t c = 0; c < std::min<std::size_t>(inner_profiles.size(), 10); ++c)
    std::printf("  %-14zu %8lld %12lld %12.4f\n", c,
                static_cast<long long>(inner_profiles[c].size),
                static_cast<long long>(inner_profiles[c].internal_weight),
                inner_profiles[c].conductance);
  if (inner_profiles.size() > 10)
    std::printf("  ... and %zu more\n", inner_profiles.size() - 10);

  // Map a few sub-community members back to original vertex ids.
  std::printf("\nsub-community 0 members map back to original vertices:");
  int shown = 0;
  for (std::size_t v = 0; v < inner.community.size() && shown < 8; ++v) {
    if (inner.community[v] == 0) {
      std::printf(" %lld", static_cast<long long>(sub.original_vertex[v]));
      ++shown;
    }
  }
  std::printf(" ...\n");
  return 0;
}
